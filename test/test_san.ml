(* Tests for the VmmSan happens-before sanitizer: discipline checks driven
   through the annotation API, race and use-after-free checks driven through
   the simulated runtime, and the teeth comparison against the bounded-window
   serializability checker on the armed protocol bugs. *)

module San = Tstm_san.San
module R = Tstm_runtime.Runtime_sim
module V = Tstm_vmm.Vmm.Make (Tstm_runtime.Runtime_sim)
module Chaos = Tstm_chaos.Chaos
module St = Tstm_harness.Stress
module S = Tstm_harness.Scenario
module W = Tstm_harness.Workload

let check_bool = Alcotest.(check bool)
let has k fs = List.exists (fun f -> f.San.kind = k) fs

let render_all fs = String.concat "; " (List.map San.render fs)

(* ------------------------------------------------------------------ *)
(* Discipline checks (annotation API only, no runtime needed)          *)
(* ------------------------------------------------------------------ *)

let test_lock_discipline () =
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.lock_release ~cpu:0 ~lock:3;
        San.lock_acquire ~cpu:0 ~lock:4;
        San.lock_acquire ~cpu:0 ~lock:4;
        San.tx_exit ~cpu:0 ~committed:false)
  in
  check_bool "release without acquire" true (has San.Lock_not_held fs);
  check_bool "double acquire" true (has San.Double_acquire fs);
  check_bool "orec leak at exit" true (has San.Orec_leak fs)

let test_lock_clean () =
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.lock_acquire ~cpu:0 ~lock:4;
        San.lock_release ~cpu:0 ~lock:4;
        San.tx_exit ~cpu:0 ~committed:false)
  in
  check_bool "balanced acquire/release is clean" true (fs = [])

let test_foreign_release () =
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.tx_begin ~cpu:1;
        San.lock_acquire ~cpu:0 ~lock:7;
        San.lock_release ~cpu:1 ~lock:7)
  in
  check_bool "releasing a foreign orec" true (has San.Lock_not_held fs)

let test_clock_discipline () =
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.commit_publish ~cpu:0 ~wv:7;
        San.tx_exit ~cpu:0 ~committed:true)
  in
  check_bool "publish of an undrawn version" true (has San.Clock_publish fs);
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.clock_advance ~cpu:0 ~drawn:7;
        San.commit_publish ~cpu:0 ~wv:7;
        San.tx_exit ~cpu:0 ~committed:true)
  in
  check_bool "publish of the drawn version is clean" true (fs = [])

(* The single global sequence lock follows the same discipline as orec
   slots, reported under the ["seqlock"] label (slot 0). *)
let test_seqlock_discipline () =
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.tx_begin ~cpu:1;
        San.seqlock_acquire ~cpu:0 ~drawn:2;
        San.seqlock_acquire ~cpu:1 ~drawn:2)
  in
  check_bool "acquire while a commit is in flight" true
    (has San.Double_acquire fs);
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        San.tx_begin ~cpu:0;
        San.tx_begin ~cpu:1;
        San.seqlock_acquire ~cpu:0 ~drawn:2;
        San.seqlock_release ~cpu:1)
  in
  check_bool "foreign release of the sequence lock" true
    (has San.Lock_not_held fs);
  let (), fs =
    San.with_armed ~ncpus:1 (fun () ->
        San.tx_begin ~cpu:0;
        San.seqlock_acquire ~cpu:0 ~drawn:2;
        San.commit_publish ~cpu:0 ~wv:2;
        San.tx_exit ~cpu:0 ~committed:true)
  in
  check_bool "sequence lock leaked past commit" true
    (List.exists
       (fun f -> f.San.kind = San.Orec_leak && f.San.label = "seqlock")
       fs)

let test_seqlock_clean () =
  let (), fs =
    San.with_armed ~ncpus:1 (fun () ->
        San.tx_begin ~cpu:0;
        San.seqlock_validate ~cpu:0 ~value:0;
        San.seqlock_acquire ~cpu:0 ~drawn:2;
        San.commit_publish ~cpu:0 ~wv:2;
        San.seqlock_release ~cpu:0;
        San.tx_exit ~cpu:0 ~committed:true)
  in
  check_bool "validate/acquire/publish/release commit is clean" true (fs = [])

(* ------------------------------------------------------------------ *)
(* Races and allocator checks (through the simulated runtime)          *)
(* ------------------------------------------------------------------ *)

let test_raw_vs_tx_race () =
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        let a = R.sarray_make 16 0 in
        R.sarray_label a "mem";
        R.run ~nthreads:2 (fun i ->
            if i = 0 then R.set a 5 7
            else begin
              (* Order after cpu 0's raw store; there is no synchronization
                 edge between the two, only virtual time. *)
              R.charge 500;
              San.tx_begin ~cpu:1;
              R.set a 5 9;
              San.tx_abort ~cpu:1;
              San.tx_exit ~cpu:1 ~committed:false
            end))
  in
  check_bool
    (Printf.sprintf "raw vs transactional store race flagged [%s]"
       (render_all fs))
    true
    (has San.Raw_race fs);
  List.iter
    (fun f ->
      check_bool "finding names the word" true (f.San.addr = 5);
      check_bool "finding names both cpus" true
        (f.San.cpu >= 0 && f.San.other >= 0 && f.San.cpu <> f.San.other))
    fs

let test_ordered_raw_clean () =
  (* The same pair of raw stores, but sequential runs: the run boundary is a
     real fork/join synchronization, so no race. *)
  let (), fs =
    San.with_armed ~ncpus:2 (fun () ->
        let a = R.sarray_make 16 0 in
        R.sarray_label a "mem";
        R.run ~nthreads:1 (fun _ -> R.set a 5 7);
        R.run ~nthreads:1 (fun _ -> R.set a 5 9))
  in
  check_bool "boundary-ordered raw stores are clean" true (fs = [])

let test_use_after_free () =
  let (), fs =
    San.with_armed ~ncpus:1 (fun () ->
        R.run ~nthreads:1 (fun _ ->
            let m = V.create ~words:256 in
            let a = V.alloc m 4 in
            V.store m a 1;
            V.free m a 4;
            ignore (V.load m a)))
  in
  check_bool "use after free flagged" true (has San.Use_after_free fs)

let test_alloc_resets_shadow () =
  (* Recycling a freed block must not leak the previous life's shadow state:
     alloc resets it, so a store to the recycled block is clean. *)
  let (), fs =
    San.with_armed ~ncpus:1 (fun () ->
        R.run ~nthreads:1 (fun _ ->
            let m = V.create ~words:256 in
            let a = V.alloc m 4 in
            V.store m a 1;
            V.free m a 4;
            let b = V.alloc m 4 in
            V.store m b 2;
            ignore (V.load m b)))
  in
  check_bool "recycled block is a fresh life" true (fs = [])

(* ------------------------------------------------------------------ *)
(* Teeth: armed protocol bugs versus the window checker                *)
(* ------------------------------------------------------------------ *)

(* Sweep seeds in order under an armed bug and record the first seed the
   sanitizer flags and the first seed the serializability checker flags.
   The sanitizer judges every commit against the protocol, so it must fire
   in strictly fewer seeds than the black-box checker, which only sees
   externally non-serializable histories. *)
let first_seeds spec =
  let cap = 12 in
  let rec go seed san chk sfs =
    if seed >= cap || (san >= 0 && chk >= 0) then (san, chk, sfs)
    else
      let r = St.run_one { spec with St.seed } in
      let san, sfs =
        if san < 0 && r.St.san_findings <> [] then (seed, r.St.san_findings)
        else (san, sfs)
      in
      let chk = if chk < 0 && r.St.violation <> None then seed else chk in
      go (seed + 1) san chk sfs
  in
  go 0 (-1) (-1) []

(* [kinds] is the acceptable diagnosis set for the armed bug (at least one
   must appear among the first findings).  [allow_tie] admits san = chk:
   a single-lock STM commits torn state in whole write sets, so the very
   first poisoned seed can already be externally non-serializable — the
   sanitizer still never needs MORE seeds than the black-box checker. *)
let teeth ?(kinds = [ San.Stale_read ]) ?(allow_tie = false) stm bug () =
  let spec =
    { St.default with St.stm; per_thread = 8; bug = Some bug; san = true }
  in
  let san, chk, fs = first_seeds spec in
  check_bool
    (Printf.sprintf "sanitizer flags %s on %s (first seed %d)"
       (Chaos.bug_name bug) stm san)
    true (san >= 0);
  check_bool
    (Printf.sprintf "sanitizer needs %s seeds (san %d, checker %s)"
       (if allow_tie then "no more" else "strictly fewer")
       san
       (if chk < 0 then "none within cap" else string_of_int chk))
    true
    (chk < 0 || san < chk || (allow_tie && san = chk));
  (* The report must name a concrete (cpu, addr, access pair). *)
  check_bool "finding carries a word address" true
    (List.exists (fun f -> f.San.label = "mem" && f.San.addr >= 0) fs);
  check_bool "finding carries the access pair" true
    (List.exists (fun f -> f.San.cpu >= 0 && f.San.other >= 0) fs);
  check_bool
    (Printf.sprintf "expected diagnosis present [%s]" (render_all fs))
    true
    (List.exists (fun k -> has k fs) kinds)

(* ------------------------------------------------------------------ *)
(* Precision: clean protocols yield zero findings                      *)
(* ------------------------------------------------------------------ *)

let test_precision_clean () =
  List.iter
    (fun stm ->
      List.iter
        (fun structure ->
          for seed = 0 to 2 do
            let spec =
              { St.default with St.stm; structure; seed; san = true }
            in
            let r = St.run_one spec in
            check_bool
              (Printf.sprintf "%s %s seed=%d serializable" stm
                 (W.structure_to_string structure)
                 seed)
              true
              (r.St.violation = None);
            check_bool
              (Printf.sprintf "%s %s seed=%d san-clean [%s]" stm
                 (W.structure_to_string structure)
                 seed
                 (render_all r.St.san_findings))
              true
              (r.St.san_findings = [])
          done)
        [ W.List; W.Hashset ])
    S.all_stms

let test_precision_escalation () =
  (* Exercise the irrevocable escalation (fence) paths under the sanitizer. *)
  let total = ref 0 in
  List.iter
    (fun stm ->
      for seed = 0 to 1 do
        let spec =
          { St.default with St.stm; seed; max_retries = 1; san = true }
        in
        let r = St.run_one spec in
        total := !total + r.St.escalations;
        check_bool
          (Printf.sprintf "%s seed=%d escalating run san-clean [%s]" stm seed
             (render_all r.St.san_findings))
          true
          (St.failed r = false)
      done)
    S.all_stms;
  check_bool "escalations actually happened" true (!total > 0)

let () =
  Alcotest.run "san"
    [
      ( "discipline",
        [
          Alcotest.test_case "lock discipline" `Quick test_lock_discipline;
          Alcotest.test_case "balanced locking clean" `Quick test_lock_clean;
          Alcotest.test_case "foreign release" `Quick test_foreign_release;
          Alcotest.test_case "clock discipline" `Quick test_clock_discipline;
          Alcotest.test_case "seqlock discipline" `Quick
            test_seqlock_discipline;
          Alcotest.test_case "seqlock balanced commit clean" `Quick
            test_seqlock_clean;
        ] );
      ( "memory",
        [
          Alcotest.test_case "raw vs tx race" `Quick test_raw_vs_tx_race;
          Alcotest.test_case "ordered raw clean" `Quick test_ordered_raw_clean;
          Alcotest.test_case "use after free" `Quick test_use_after_free;
          Alcotest.test_case "alloc resets shadow" `Quick
            test_alloc_resets_shadow;
        ] );
      ( "teeth",
        [
          Alcotest.test_case "skip-extension on wb" `Quick
            (teeth "tinystm-wb" Chaos.Skip_extension);
          Alcotest.test_case "skip-validation on tl2" `Quick
            (teeth "tl2" Chaos.Skip_validation);
          Alcotest.test_case "skip-validation on norec (torn commit)" `Quick
            (teeth ~allow_tie:true "norec" Chaos.Skip_validation);
          Alcotest.test_case "skip-extension on norec" `Quick
            (teeth
               ~kinds:[ San.Read_beyond_snapshot; San.Stale_read ]
               "norec" Chaos.Skip_extension);
        ] );
      ( "precision",
        [
          Alcotest.test_case "clean sweep" `Quick test_precision_clean;
          Alcotest.test_case "escalating runs clean" `Quick
            test_precision_escalation;
        ] );
    ]
