(* Tests for the execution substrate: scheduler determinism, virtual-time
   accounting, cache-model pricing, atomic semantics under both runtimes. *)

open Tstm_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Sim_sched                                                          *)
(* ------------------------------------------------------------------ *)

let test_sched_runs_all () =
  let seen = Array.make 5 false in
  Sim_sched.run ~nthreads:5 (fun i -> seen.(i) <- true);
  Array.iteri (fun i b -> check_bool (Printf.sprintf "fiber %d ran" i) true b) seen

let test_sched_tid () =
  let tids = ref [] in
  Sim_sched.run ~nthreads:3 (fun i ->
      check_int "tid matches" i (Sim_sched.tid ());
      tids := i :: !tids);
  check_int "three fibers" 3 (List.length !tids)

let test_sched_vtime_advances () =
  let final = Array.make 2 0 in
  Sim_sched.run ~nthreads:2 (fun i ->
      Sim_sched.charge 100;
      Sim_sched.charge 50;
      final.(i) <- Sim_sched.now_cycles ());
  check_int "fiber 0 time" 150 final.(0);
  check_int "fiber 1 time" 150 final.(1)

let test_sched_noyield_advances () =
  let final = ref 0 in
  Sim_sched.run ~nthreads:1 (fun _ ->
      Sim_sched.charge_noyield 42;
      final := Sim_sched.now_cycles ());
  check_int "noyield counted" 42 !final

let test_sched_interleaves_by_time () =
  (* Fiber 0 does cheap steps, fiber 1 expensive ones: the trace must be
     ordered by virtual time. *)
  let trace = ref [] in
  Sim_sched.run ~nthreads:2 (fun i ->
      let cost = if i = 0 then 10 else 25 in
      for _ = 1 to 4 do
        Sim_sched.charge cost;
        trace := (i, Sim_sched.now_cycles ()) :: !trace
      done);
  let trace = List.rev !trace in
  let times = List.map snd trace in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a <= b && sorted rest
    | _ -> true
  in
  check_bool "trace ordered by vtime" true (sorted times);
  (* First event must be fiber 0 at t=10 (cheaper step). *)
  (match trace with
  | (0, 10) :: _ -> ()
  | (i, t) :: _ -> Alcotest.failf "first event was fiber %d at %d" i t
  | [] -> Alcotest.fail "empty trace")

let test_sched_deterministic () =
  let run_once () =
    let trace = ref [] in
    Sim_sched.run ~nthreads:4 (fun i ->
        let g = Tstm_util.Xrand.create (1000 + i) in
        for _ = 1 to 50 do
          Sim_sched.charge (1 + Tstm_util.Xrand.int g 20);
          trace := (i, Sim_sched.now_cycles ()) :: !trace
        done);
    !trace
  in
  check_bool "two identical runs" true (run_once () = run_once ())

let test_sched_outside_defaults () =
  check_bool "not inside" false (Sim_sched.inside ());
  check_int "tid 0" 0 (Sim_sched.tid ());
  check_int "time 0" 0 (Sim_sched.now_cycles ());
  Sim_sched.charge 10 (* must be a harmless no-op *)

let test_sched_rejects_bad_nthreads () =
  Alcotest.check_raises "0 threads"
    (Invalid_argument "Sim_sched.run: nthreads < 1") (fun () ->
      Sim_sched.run ~nthreads:0 (fun _ -> ()))

let test_sched_many_switches_no_stack_growth () =
  (* A trampolined scheduler must survive hundreds of thousands of context
     switches; a recursive one would blow the stack here. *)
  Sim_sched.run ~nthreads:2 (fun _ ->
      for _ = 1 to 200_000 do
        Sim_sched.charge 1
      done);
  check_bool "switch count high" true (Sim_sched.switches () > 200_000)

let test_sched_exception_propagates () =
  (try
     Sim_sched.run ~nthreads:1 (fun _ -> failwith "boom");
     Alcotest.fail "expected exception"
   with Failure m -> Alcotest.(check string) "message" "boom" m);
  (* Scheduler state must be cleaned up: a fresh run still works. *)
  let ok = ref false in
  Sim_sched.run ~nthreads:1 (fun _ -> ok := true);
  check_bool "recovered" true !ok

(* ------------------------------------------------------------------ *)
(* Cache_model                                                        *)
(* ------------------------------------------------------------------ *)

let params = Cache_model.default

let test_cache_first_read_misses () =
  let c = Cache_model.create (Cache_model.create_global params) 64 in
  let cost = Cache_model.read_cost c ~cpu:0 ~index:0 in
  check_int "cold miss" (params.Cache_model.read_hit + params.Cache_model.line_transfer) cost;
  let cost2 = Cache_model.read_cost c ~cpu:0 ~index:0 in
  check_int "then hit" params.Cache_model.read_hit cost2

let test_cache_same_line_shares () =
  let c = Cache_model.create (Cache_model.create_global params) 64 in
  ignore (Cache_model.read_cost c ~cpu:0 ~index:0);
  (* Word 1 is on the same line as word 0 (words_per_line >= 2). *)
  let cost = Cache_model.read_cost c ~cpu:0 ~index:1 in
  check_int "line already present" params.Cache_model.read_hit cost

let test_cache_write_invalidates_reader () =
  let c = Cache_model.create (Cache_model.create_global params) 64 in
  ignore (Cache_model.read_cost c ~cpu:0 ~index:0);
  ignore (Cache_model.read_cost c ~cpu:1 ~index:0);
  (* CPU 1 writes: must pay to invalidate CPU 0's copy. *)
  let wcost = Cache_model.write_cost c ~cpu:1 ~index:0 in
  check_int "invalidation"
    (params.Cache_model.write_hit + params.Cache_model.line_transfer)
    wcost;
  (* CPU 0's next read pays a transfer (line dirty at CPU 1). *)
  let rcost = Cache_model.read_cost c ~cpu:0 ~index:0 in
  check_int "transfer back"
    (params.Cache_model.read_hit + params.Cache_model.line_transfer)
    rcost

let test_cache_exclusive_writes_are_cheap () =
  let c = Cache_model.create (Cache_model.create_global params) 64 in
  ignore (Cache_model.write_cost c ~cpu:2 ~index:8);
  let cost = Cache_model.write_cost c ~cpu:2 ~index:8 in
  check_int "owned write" params.Cache_model.write_hit cost

let test_cache_sole_sharer_upgrade () =
  let c = Cache_model.create (Cache_model.create_global params) 64 in
  ignore (Cache_model.read_cost c ~cpu:3 ~index:16);
  let cost = Cache_model.write_cost c ~cpu:3 ~index:16 in
  check_int "silent upgrade" params.Cache_model.write_hit cost

let test_cache_false_sharing_pingpong () =
  (* Two CPUs writing *different* words on the same line must ping-pong. *)
  let c = Cache_model.create (Cache_model.create_global params) 64 in
  ignore (Cache_model.write_cost c ~cpu:0 ~index:0);
  let a = Cache_model.write_cost c ~cpu:1 ~index:1 in
  let b = Cache_model.write_cost c ~cpu:0 ~index:0 in
  check_int "cpu1 pays" (params.Cache_model.write_hit + params.Cache_model.line_transfer) a;
  check_int "cpu0 pays again" (params.Cache_model.write_hit + params.Cache_model.line_transfer) b

let test_cache_validate () =
  Alcotest.check_raises "bad words_per_line"
    (Invalid_argument "Cache_model: words_per_line must be a power of two")
    (fun () -> Cache_model.validate { params with Cache_model.words_per_line = 3 })

let test_cache_capacity_conflict_evicts () =
  (* The private cache is 8-way set-associative: 8 lines mapping to the same
     set coexist; a 9th evicts the round-robin victim, even though coherence
     alone would allow a hit. *)
  let g = Cache_model.create_global params in
  let wpl = params.Cache_model.words_per_line in
  let sets = params.Cache_model.private_cache_lines / 8 in
  let stride = sets * wpl in
  let c = Cache_model.create g (10 * stride) in
  for k = 0 to 7 do
    ignore (Cache_model.read_cost c ~cpu:0 ~index:(k * stride))
  done;
  check_int "8 ways coexist" params.Cache_model.read_hit
    (Cache_model.read_cost c ~cpu:0 ~index:0);
  (* The 9th same-set line evicts one way; cycling through 9 lines keeps
     missing somewhere. *)
  ignore (Cache_model.read_cost c ~cpu:0 ~index:(8 * stride));
  let misses = ref 0 in
  for k = 0 to 8 do
    let cost = Cache_model.read_cost c ~cpu:0 ~index:(k * stride) in
    if cost > params.Cache_model.read_hit + params.Cache_model.l1_miss then
      incr misses
  done;
  check_bool "conflict misses occur" true (!misses > 0);
  (* A line in a different set is untouched by all this. *)
  ignore (Cache_model.read_cost c ~cpu:0 ~index:wpl);
  check_int "independent set hits" params.Cache_model.read_hit
    (Cache_model.read_cost c ~cpu:0 ~index:wpl)

let test_cache_reset_tags_cools () =
  let g = Cache_model.create_global params in
  let c = Cache_model.create g 64 in
  ignore (Cache_model.read_cost c ~cpu:0 ~index:0);
  check_int "warm hit" params.Cache_model.read_hit
    (Cache_model.read_cost c ~cpu:0 ~index:0);
  Cache_model.reset_tags g;
  check_int "cold again after reset"
    (params.Cache_model.read_hit + params.Cache_model.line_transfer)
    (Cache_model.read_cost c ~cpu:0 ~index:0)

let test_cache_per_cpu_private () =
  (* CPU 1's evictions must not disturb CPU 0's cache. *)
  let g = Cache_model.create_global params in
  let stride = params.Cache_model.private_cache_lines * params.Cache_model.words_per_line in
  let c = Cache_model.create g (2 * stride) in
  ignore (Cache_model.read_cost c ~cpu:0 ~index:0);
  ignore (Cache_model.read_cost c ~cpu:1 ~index:0);
  ignore (Cache_model.read_cost c ~cpu:1 ~index:stride);
  check_int "cpu0 unaffected" params.Cache_model.read_hit
    (Cache_model.read_cost c ~cpu:0 ~index:0)

(* ------------------------------------------------------------------ *)
(* Runtime implementations (shared semantics)                         *)
(* ------------------------------------------------------------------ *)

module Semantics (R : Runtime_intf.S) = struct
  let test_array_basic () =
    let a = R.sarray_make 10 7 in
    check_int "length" 10 (R.sarray_length a);
    for i = 0 to 9 do
      check_int "init" 7 (R.get a i)
    done;
    R.set a 3 42;
    check_int "set/get" 42 (R.get a 3);
    check_int "others untouched" 7 (R.get a 2)

  let test_cas () =
    let a = R.sarray_make 1 5 in
    check_bool "cas succeeds" true (R.cas a 0 5 6);
    check_int "updated" 6 (R.get a 0);
    check_bool "cas fails" false (R.cas a 0 5 7);
    check_int "unchanged" 6 (R.get a 0)

  let test_fetch_add () =
    let a = R.sarray_make 1 10 in
    check_int "returns old" 10 (R.fetch_add a 0 5);
    check_int "adds" 15 (R.get a 0);
    check_int "negative delta" 15 (R.fetch_add a 0 (-3));
    check_int "subtracted" 12 (R.get a 0)

  let test_counter_under_threads () =
    let a = R.sarray_make 1 0 in
    let n = 4 and per = 1000 in
    R.run ~nthreads:n (fun _ ->
        for _ = 1 to per do
          ignore (R.fetch_add a 0 1)
        done);
    check_int "no lost updates" (n * per) (R.get a 0)

  let test_tids_unique () =
    let a = R.sarray_make 8 0 in
    R.run ~nthreads:8 (fun i ->
        ignore (R.fetch_add a (R.tid ()) 1);
        check_int "tid = body arg" i (R.tid ()));
    for i = 0 to 7 do
      check_int "each tid once" 1 (R.get a i)
    done

  let test_cas_mutex () =
    (* A CAS spin lock protecting a non-atomic counter: the total must be
       exact under every interleaving. *)
    let lock = R.sarray_make 1 0 in
    let counter = ref 0 in
    let n = 4 and per = 500 in
    R.run ~nthreads:n (fun _ ->
        for _ = 1 to per do
          while not (R.cas lock 0 0 1) do
            R.yield ()
          done;
          counter := !counter + 1;
          R.set lock 0 0
        done);
    check_int "mutex protected" (n * per) !counter

  let tests =
    [
      Alcotest.test_case "array basics" `Quick test_array_basic;
      Alcotest.test_case "cas" `Quick test_cas;
      Alcotest.test_case "fetch_add" `Quick test_fetch_add;
      Alcotest.test_case "parallel counter" `Quick test_counter_under_threads;
      Alcotest.test_case "tids" `Quick test_tids_unique;
      Alcotest.test_case "cas mutex" `Quick test_cas_mutex;
    ]
end

module Sim_semantics = Semantics (Runtime_sim)
module Real_semantics = Semantics (Runtime_real)

(* ------------------------------------------------------------------ *)
(* Runtime_sim specifics                                              *)
(* ------------------------------------------------------------------ *)

let test_sim_now_uses_clock () =
  Runtime_sim.configure Cache_model.default;
  let t = ref 0.0 in
  Runtime_sim.run ~nthreads:1 (fun _ ->
      Runtime_sim.charge 2_000_000_000;
      t := Runtime_sim.now ());
  (* 2e9 cycles at 2 GHz = 1 second. *)
  Alcotest.(check (float 1e-6)) "1 second" 1.0 !t

let test_sim_zero_cost_outside_run () =
  let a = Runtime_sim.sarray_make 4 0 in
  Runtime_sim.set a 0 9;
  check_int "works outside run" 9 (Runtime_sim.get a 0)

let test_sim_contention_costs_time () =
  Runtime_sim.configure Cache_model.default;
  (* Same total op count; contended case has both CPUs hammering one word,
     uncontended case uses words on distinct lines. The contended run must
     take strictly more virtual time. *)
  let elapsed contended =
    let a = Runtime_sim.sarray_make 64 0 in
    let finish = Array.make 2 0.0 in
    Runtime_sim.run ~nthreads:2 (fun i ->
        let idx = if contended then 0 else i * 32 in
        for _ = 1 to 200 do
          Runtime_sim.set a idx 1
        done;
        finish.(i) <- Runtime_sim.now ());
    Float.max finish.(0) finish.(1)
  in
  let c = elapsed true and u = elapsed false in
  check_bool (Printf.sprintf "contended %.3g > uncontended %.3g" c u) true (c > u)

let test_sim_deterministic_parallel_counter () =
  let trace () =
    Runtime_sim.configure Cache_model.default;
    let a = Runtime_sim.sarray_make 1 0 in
    let log = ref [] in
    Runtime_sim.run ~nthreads:3 (fun i ->
        let g = Tstm_util.Xrand.create i in
        for _ = 1 to 100 do
          Runtime_sim.charge (Tstm_util.Xrand.int g 10 + 1);
          log := (i, Runtime_sim.fetch_add a 0 1) :: !log
        done);
    !log
  in
  check_bool "identical traces" true (trace () = trace ())

(* ------------------------------------------------------------------ *)
(* Runtime_real edge contracts                                        *)
(* ------------------------------------------------------------------ *)

let test_real_run_non_reentrant () =
  match
    Runtime_real.run ~nthreads:1 (fun _ ->
        Runtime_real.run ~nthreads:1 (fun _ -> ()))
  with
  | () -> Alcotest.fail "nested run was accepted"
  | exception Invalid_argument _ -> ()

let test_real_pool_reuse_after_raise () =
  (* A raising job must fail that run, not poison the pool. *)
  (match Runtime_real.run ~nthreads:2 (fun tid -> if tid = 1 then failwith "boom")
   with
  | () -> Alcotest.fail "job exception was swallowed"
  | exception Failure m -> Alcotest.(check string) "the job's error" "boom" m);
  let sum = Atomic.make 0 in
  Runtime_real.run ~nthreads:4 (fun tid ->
      ignore (Atomic.fetch_and_add sum tid));
  check_int "pool is reusable after the failure" 6 (Atomic.get sum)

let test_real_first_error_in_tid_order () =
  (* Several jobs raise; the error surfaced must be the lowest tid's,
     independent of wall-clock finishing order. *)
  match
    Runtime_real.run ~nthreads:4 (fun tid ->
        if tid >= 1 then failwith (Printf.sprintf "tid%d" tid))
  with
  | () -> Alcotest.fail "no error propagated"
  | exception Failure m ->
      Alcotest.(check string) "lowest-tid error wins" "tid1" m

let test_healed_rejects_bad_nthreads () =
  match Runtime_real.run_healed ~nthreads:0 (fun _ -> ()) with
  | _ -> Alcotest.fail "nthreads = 0 was accepted"
  | exception Invalid_argument _ -> ()

let test_healed_respawns_crashed_workers () =
  (* Every worker crashes on its first execution; the respawned replay
     completes.  The report must account for one heal per tid and the
     replays must actually have run. *)
  let n = 3 in
  let crashed = Array.init n (fun _ -> Atomic.make false) in
  let completed = Array.init n (fun _ -> Atomic.make 0) in
  let r =
    Runtime_real.run_healed ~nthreads:n (fun tid ->
        if not (Atomic.exchange crashed.(tid) true) then
          raise
            (Tstm_fault.Fault.Injected_crash { tid; point = "test" });
        Atomic.incr completed.(tid))
  in
  check_int "one crash healed per tid" n r.Runtime_real.crashes_healed;
  check_int "one requeue per tid" n r.Runtime_real.requeues;
  Array.iteri
    (fun tid c ->
      check_int (Printf.sprintf "tid %d replay completed" tid) 1 (Atomic.get c))
    completed

let test_healed_requeue_budget_bounds_crash_loops () =
  (* A job that crashes on every execution must not requeue forever: the
     budget runs out and the crash propagates as that worker's error. *)
  match
    Runtime_real.run_healed ~max_requeues:3 ~nthreads:1 (fun tid ->
        raise (Tstm_fault.Fault.Injected_crash { tid; point = "test" }))
  with
  | _ -> Alcotest.fail "endless crash loop terminated without error"
  | exception Tstm_fault.Fault.Injected_crash _ -> ()

let test_healed_propagates_non_crash_errors () =
  (* Only injected crashes are healed; a plain job exception fails the
     run (first in tid order) without any respawn. *)
  match
    Runtime_real.run_healed ~nthreads:2 (fun tid ->
        if tid = 1 then failwith "real bug")
  with
  | _ -> Alcotest.fail "job exception was swallowed"
  | exception Failure m -> Alcotest.(check string) "the job's error" "real bug" m

(* ------------------------------------------------------------------ *)
(* Watchdog calm-window recovery boundaries                           *)
(* ------------------------------------------------------------------ *)

let wd_level = Alcotest.testable
    (Fmt.of_to_string Watchdog.level_to_string)
    ( = )

let check_level = Alcotest.check wd_level

let test_watchdog_calm_boundaries () =
  (* window=100, recover_windows=2: de-escalation must happen at exactly
     the second consecutive commit-bearing window boundary, one level per
     probe: Serialized -> Boosted at t=200, Boosted -> Normal at t=400. *)
  let w = Watchdog.create ~window:100 ~starve_retries:4 ~recover_windows:2 () in
  ignore (Watchdog.note_abort w ~now:0 ~tid:0 ~retries:4);
  ignore (Watchdog.note_abort w ~now:0 ~tid:0 ~retries:4);
  check_level "two starvations escalate to the top" Watchdog.Serialized
    (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:50 ~tid:0);
  ignore (Watchdog.note_commit w ~now:99 ~tid:0);
  check_level "inside the first window" Watchdog.Serialized (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:100 ~tid:0);
  check_level "one calm window is not enough" Watchdog.Serialized
    (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:199 ~tid:0);
  check_level "still inside the second window" Watchdog.Serialized
    (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:200 ~tid:0);
  check_level "second calm window de-escalates one step" Watchdog.Boosted
    (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:300 ~tid:0);
  check_level "the probe counter restarts after a step" Watchdog.Boosted
    (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:400 ~tid:0);
  check_level "two more calm windows reach Normal" Watchdog.Normal
    (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:600 ~tid:0);
  check_level "Normal is the floor" Watchdog.Normal (Watchdog.level w)

let test_watchdog_livelock_resets_calm () =
  (* A zero-commit window between two calm windows must reset the probe:
     recovery needs *consecutive* calm windows. *)
  let w = Watchdog.create ~window:100 ~starve_retries:4 ~recover_windows:2 () in
  ignore (Watchdog.note_abort w ~now:0 ~tid:0 ~retries:4);
  check_level "starvation escalates" Watchdog.Boosted (Watchdog.level w);
  ignore (Watchdog.note_commit w ~now:50 ~tid:0);
  (* The abort at 100 closes the commit-bearing window [0, 100): calm = 1.
     Nothing commits in [100, 200); the abort at 250 closes that window as
     a livelock, resetting the calm credit and re-escalating. *)
  ignore (Watchdog.note_abort w ~now:100 ~tid:0 ~retries:1);
  check_level "calm window alone does not de-escalate" Watchdog.Boosted
    (Watchdog.level w);
  ignore (Watchdog.note_abort w ~now:250 ~tid:0 ~retries:1);
  check_level "livelock re-escalates" Watchdog.Serialized (Watchdog.level w);
  check_int "livelock counted" 1 (Watchdog.livelocks w);
  (* Two fresh calm windows only step down one level: the earlier calm
     credit is gone. *)
  ignore (Watchdog.note_commit w ~now:260 ~tid:0);
  ignore (Watchdog.note_commit w ~now:350 ~tid:0);
  ignore (Watchdog.note_commit w ~now:450 ~tid:0);
  check_level "reset probe: one step only" Watchdog.Boosted (Watchdog.level w)

let () =
  Alcotest.run "tstm_runtime"
    [
      ( "sim_sched",
        [
          Alcotest.test_case "runs all fibers" `Quick test_sched_runs_all;
          Alcotest.test_case "tid" `Quick test_sched_tid;
          Alcotest.test_case "vtime" `Quick test_sched_vtime_advances;
          Alcotest.test_case "noyield" `Quick test_sched_noyield_advances;
          Alcotest.test_case "interleaves by time" `Quick
            test_sched_interleaves_by_time;
          Alcotest.test_case "deterministic" `Quick test_sched_deterministic;
          Alcotest.test_case "outside defaults" `Quick
            test_sched_outside_defaults;
          Alcotest.test_case "bad nthreads" `Quick
            test_sched_rejects_bad_nthreads;
          Alcotest.test_case "no stack growth" `Quick
            test_sched_many_switches_no_stack_growth;
          Alcotest.test_case "exception propagates" `Quick
            test_sched_exception_propagates;
        ] );
      ( "cache_model",
        [
          Alcotest.test_case "cold miss then hit" `Quick
            test_cache_first_read_misses;
          Alcotest.test_case "line sharing" `Quick test_cache_same_line_shares;
          Alcotest.test_case "write invalidates" `Quick
            test_cache_write_invalidates_reader;
          Alcotest.test_case "owned writes cheap" `Quick
            test_cache_exclusive_writes_are_cheap;
          Alcotest.test_case "upgrade" `Quick test_cache_sole_sharer_upgrade;
          Alcotest.test_case "false sharing" `Quick
            test_cache_false_sharing_pingpong;
          Alcotest.test_case "validate" `Quick test_cache_validate;
          Alcotest.test_case "capacity conflicts" `Quick
            test_cache_capacity_conflict_evicts;
          Alcotest.test_case "reset cools" `Quick test_cache_reset_tags_cools;
          Alcotest.test_case "per-cpu privacy" `Quick
            test_cache_per_cpu_private;
        ] );
      ("sim semantics", Sim_semantics.tests);
      ("domains semantics", Real_semantics.tests);
      ( "runtime_real contracts",
        [
          Alcotest.test_case "non-reentrant run" `Quick
            test_real_run_non_reentrant;
          Alcotest.test_case "pool reuse after raise" `Quick
            test_real_pool_reuse_after_raise;
          Alcotest.test_case "first error in tid order" `Quick
            test_real_first_error_in_tid_order;
          Alcotest.test_case "run_healed bad nthreads" `Quick
            test_healed_rejects_bad_nthreads;
          Alcotest.test_case "run_healed respawns crashed workers" `Quick
            test_healed_respawns_crashed_workers;
          Alcotest.test_case "requeue budget bounds crash loops" `Quick
            test_healed_requeue_budget_bounds_crash_loops;
          Alcotest.test_case "non-crash errors propagate" `Quick
            test_healed_propagates_non_crash_errors;
        ] );
      ( "watchdog calm windows",
        [
          Alcotest.test_case "recovery boundaries" `Quick
            test_watchdog_calm_boundaries;
          Alcotest.test_case "livelock resets calm" `Quick
            test_watchdog_livelock_resets_calm;
        ] );
      ( "runtime_sim",
        [
          Alcotest.test_case "virtual clock" `Quick test_sim_now_uses_clock;
          Alcotest.test_case "zero cost outside run" `Quick
            test_sim_zero_cost_outside_run;
          Alcotest.test_case "contention costs time" `Quick
            test_sim_contention_costs_time;
          Alcotest.test_case "deterministic parallel" `Quick
            test_sim_deterministic_parallel_counter;
        ] );
    ]
