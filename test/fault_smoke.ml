(* Fault-injection smoke battery (`dune build @fault-smoke`; folded into
   runtest).  Four legs:

   1. disarmed sanity — with no plan armed the taps are inert and a short
      bench cell passes its full integrity audit;
   2. a seeded sweep of every STM family x {crash, hang, oom} under
      [Fault_run]: every run must heal (no escaped exception, clean drain,
      zero arena drift) and every kind must actually fire somewhere;
   3. the Bench_real failed-repetition contract — a single injected crash
      inside a timed repetition becomes a typed [failed_reps] entry while
      the remaining repetitions still yield samples;
   4. a [Service_real] fault burst — the breaker trips, the run keeps
      goodput above zero, and once the bounded storm ends the breaker
      recovers to closed with the integrity audit green. *)

module Fault = Tstm_fault.Fault
module FR = Tstm_harness.Fault_run
module BR = Tstm_harness.Bench_real
module Bench = Tstm_obs.Bench
module SR = Tstm_service.Service_real

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("fault-smoke: FAIL " ^ s);
      exit 1)
    fmt

let disarmed () =
  if Fault.enabled () then fail "a fault plan is armed at startup";
  let proto =
    { BR.duration_s = 0.02; warmup_s = 0.0; reps = 2; observe = false }
  in
  let req =
    { BR.default_request with BR.structure = "hashset"; domains = 2; size = 64 }
  in
  match BR.run_cell req proto with
  | Error m -> fail "disarmed bench rejected: %s" m
  | exception e -> fail "disarmed bench raised: %s" (Printexc.to_string e)
  | Ok (_, integ) ->
      if integ.BR.violations <> [] then
        fail "disarmed bench violations: %s"
          (String.concat "; " integ.BR.violations);
      if integ.BR.failed_reps <> [] then fail "disarmed bench failed a rep";
      print_endline "fault-smoke: disarmed taps inert, bench cell clean"

let sweep () =
  let specs =
    FR.plan ~seeds:2 ~stms:BR.stm_names
      ~kinds:([ Fault.Crash; Fault.Hang; Fault.Oom ] : Fault.kind list)
      { FR.default with FR.domains = 2; per_thread = 150 }
  in
  let fired = Hashtbl.create 3 in
  Array.iter
    (fun spec ->
      let r = FR.run_one spec in
      if not (FR.healed r) then
        fail "not healed (%s): error=%s leak=%d violations=[%s]"
          (FR.repro_command spec)
          (Option.value ~default:"-" r.FR.error)
          r.FR.leak_words
          (String.concat "; " r.FR.violations);
      let k = Fault.kind_name spec.FR.kind in
      let prev = try Hashtbl.find fired k with Not_found -> 0 in
      Hashtbl.replace fired k (prev + r.FR.fired))
    specs;
  List.iter
    (fun k ->
      if (try Hashtbl.find fired k with Not_found -> 0) = 0 then
        fail "kind %s never fired across the sweep" k)
    [ "crash"; "hang"; "oom" ];
  Printf.printf "fault-smoke: sweep healed all %d runs\n%!" (Array.length specs)

(* One crash, capped by [limit:1], landing inside a timed repetition.  The
   populate phase runs under the same armed plan, so some seeds spend the
   crash there (it then escapes [run_cell]); retry seeds until one lands in
   a repetition.  The crashed repetition must surface as a typed
   [failed_reps] entry — never abort the remaining repetitions. *)
let bench_failed_rep () =
  let proto =
    { BR.duration_s = 0.03; warmup_s = 0.0; reps = 3; observe = false }
  in
  let req =
    { BR.default_request with BR.structure = "hashset"; domains = 2; size = 32 }
  in
  let burst =
    { Fault.crash_pct = 1.0; hang_pct = 0.0; hang_us = 1; oom_pct = 0.0 }
  in
  let rec attempt s =
    if s >= 20 then
      fail "bench failed-rep: no seed landed the crash in a timed repetition"
    else begin
      Fault.activate ~config:burst ~limit:1 ~seed:(1000 + s) ();
      let outcome =
        match BR.run_cell { req with BR.seed = s } proto with
        | r -> Some r
        | exception Fault.Injected_crash _ -> None (* spent during populate *)
      in
      Fault.deactivate ();
      match outcome with
      | Some (Ok (cell, integ)) when integ.BR.failed_reps <> [] ->
          let kept = List.length cell.Bench.samples in
          let lost = List.length integ.BR.failed_reps in
          if kept + lost <> proto.BR.reps then
            fail "bench failed-rep: %d samples + %d failures <> %d reps" kept
              lost proto.BR.reps;
          List.iter
            (fun (_, e) ->
              (* The registered printer for [Fault.Injected_crash]. *)
              let sub = "injected worker crash" in
              let n = String.length sub and m = String.length e in
              let rec has i =
                i + n <= m && (String.sub e i n = sub || has (i + 1))
              in
              if not (has 0) then fail "bench failed-rep: untyped failure %S" e)
            integ.BR.failed_reps;
          Printf.printf
            "fault-smoke: bench seed %d lost %d rep(s) to the crash, kept %d \
             sample(s)\n\
             %!"
            s lost kept
      | Some (Ok _) | Some (Error _) | None -> attempt (s + 1)
    end
  in
  attempt 0

let service_burst () =
  let burst =
    { Fault.crash_pct = 10.0; hang_pct = 0.0; hang_us = 1; oom_pct = 2.0 }
  in
  Fault.activate ~config:burst ~limit:12 ~seed:7 ();
  let r =
    Fun.protect ~finally:Fault.deactivate (fun () -> SR.run_one SR.default)
  in
  if SR.failed r then
    fail "service burst: leak=%d violations=[%s]" r.SR.leak_words
      (String.concat "; " r.SR.violations);
  if r.SR.crash_faults = 0 then fail "service burst: no crash faults recorded";
  if r.SR.breaker_trips = 0 then fail "service burst: breaker never tripped";
  if r.SR.breaker_state <> "closed" then
    fail "service burst: breaker did not recover (final %s)" r.SR.breaker_state;
  if r.SR.goodput <= 0.0 then fail "service burst: zero goodput";
  Printf.printf
    "fault-smoke: service burst survived (%d crash faults, %d trips, \
     recovered closed, goodput %.0f/s)\n\
     %!"
    r.SR.crash_faults r.SR.breaker_trips r.SR.goodput

let () =
  disarmed ();
  sweep ();
  bench_failed_rep ();
  service_burst ();
  print_endline "fault-smoke: OK"
