(* Serve smoke: a short deterministic overload run per STM asserting the
   shed/goodput invariants the service layer exists to provide.

   For every registry STM, drive the default list-set service at 2x the
   calibrated capacity:

   - with shedding disabled ([No_shed]) the deadline-miss rate blows up
     (most admitted requests miss) and the executed-request p99 blows past
     the configured deadline;
   - with the full ladder ([Serialize_hot]) goodput stays >= 80% of the
     calibrated capacity, at most 1% of commits land past the deadline,
     and nothing is left unaccounted;
   - both runs satisfy the accounting identity and leak zero words.

   Exit code 0 = all invariants hold on every STM. *)

module Service = Tstm_service.Service
module Slo = Tstm_obs.Slo

let check label cond =
  if not cond then begin
    Printf.eprintf "serve-smoke FAILED: %s\n" label;
    exit 1
  end

let hz = Service.cycles_per_second ()

let run stm =
  let base = { Service.default with stm; seed = 7; watchdog = true } in
  (* (a) shedding disabled: the queue grows without bound and the SLO is
     blown. *)
  let r0 = Service.run_one { base with shed = Service.No_shed } in
  let s0 = r0.Service.slo in
  check (stm ^ ": no-shed accounting")
    (s0.Slo.requests = s0.Slo.shed + s0.Slo.admitted
    && s0.Slo.admitted
       = s0.Slo.committed + s0.Slo.deadline_missed + s0.Slo.budget_exhausted);
  check (stm ^ ": no-shed sheds nothing") (s0.Slo.shed = 0);
  check (stm ^ ": no-shed misses deadlines")
    (float_of_int s0.Slo.deadline_missed
    >= 0.3 *. float_of_int (max 1 s0.Slo.admitted));
  check (stm ^ ": no-shed p99 blows past the deadline")
    (float_of_int s0.Slo.p99_done /. hz >= base.Service.deadline);
  check (stm ^ ": no-shed leaks nothing") (r0.Service.leak_words = 0);
  (* (b) the full ladder: goodput and tail latency hold. *)
  let r1 = Service.run_one { base with shed = Service.Serialize_hot } in
  let s1 = r1.Service.slo in
  check (stm ^ ": ladder accounting")
    (s1.Slo.requests = s1.Slo.shed + s1.Slo.admitted
    && s1.Slo.admitted
       = s1.Slo.committed + s1.Slo.deadline_missed + s1.Slo.budget_exhausted);
  check (stm ^ ": ladder sheds under overload")
    (s1.Slo.shed + s1.Slo.dropped > 0);
  check (stm ^ ": ladder goodput >= 80% of capacity")
    (r1.Service.goodput >= 0.8 *. r1.Service.capacity);
  check (stm ^ ": ladder keeps late commits under 1%")
    (float_of_int s1.Slo.late
    <= 0.01 *. float_of_int (max 1 (s1.Slo.committed + s1.Slo.late)));
  check (stm ^ ": ladder leaks nothing") (r1.Service.leak_words = 0);
  check (stm ^ ": no violations")
    (r0.Service.violations = [] && r1.Service.violations = []);
  Printf.printf
    "serve-smoke %s: capacity=%.0f/s offered=%.0f/s | no-shed: missed %d/%d \
     p99done=%.2fms | ladder: goodput=%.0f/s shed=%d dropped=%d late=%d\n"
    stm r1.Service.capacity r1.Service.offered s0.Slo.deadline_missed
    s0.Slo.admitted
    (float_of_int s0.Slo.p99_done /. hz *. 1e3)
    r1.Service.goodput s1.Slo.shed s1.Slo.dropped s1.Slo.late

let () =
  List.iter run Tstm_harness.Scenario.all_stms;
  print_endline "serve-smoke: all invariants hold"
