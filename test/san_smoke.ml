(* San smoke: a small deterministic seed sweep across all three STM
   variants and all four structures with the happens-before sanitizer
   armed — zero findings expected — plus a teeth spot check that an armed
   protocol bug is flagged.  `dune build @san-smoke` runs it alone; the
   runtest alias folds it into the regular test run. *)

module San = Tstm_san.San
module Stress = Tstm_harness.Stress
module Scenario = Tstm_harness.Scenario
module Workload = Tstm_harness.Workload
module Chaos = Tstm_chaos.Chaos

let () =
  let structures =
    [ Workload.List; Workload.Skiplist; Workload.Rbtree; Workload.Hashset ]
  in
  let base =
    { Stress.default with Stress.max_retries = 6; san = true }
  in
  let r = Stress.sweep ~seeds:2 ~stms:Scenario.all_stms ~structures base in
  Printf.printf
    "san-smoke: %d runs, %d ops checked, %d injections, %d commits, %d \
     aborts, %d escalations\n"
    r.Stress.runs r.Stress.total_events r.Stress.total_injected
    r.Stress.total_commits r.Stress.total_aborts r.Stress.total_escalations;
  (match r.Stress.first_failure with
  | Some (spec, rep) ->
      Printf.eprintf "san-smoke: FAILED\n";
      (match rep.Stress.violation with
      | Some m -> Printf.eprintf "%s\n" m
      | None -> ());
      List.iter
        (fun f -> Printf.eprintf "%s\n" (San.render f))
        rep.Stress.san_findings;
      Printf.eprintf "replay: %s\n" (Stress.repro_command spec);
      exit 1
  | None -> ());
  (* Teeth spot check: the armed skip-validation bug must produce findings. *)
  let spec =
    {
      base with
      Stress.stm = "tl2";
      per_thread = 8;
      seed = 0;
      bug = Some Chaos.Skip_validation;
    }
  in
  let rep = Stress.run_one spec in
  if rep.Stress.san_findings = [] then begin
    Printf.eprintf
      "san-smoke: FAILED: armed skip-validation produced no findings\n";
    exit 1
  end;
  print_endline "san-smoke: OK (clean sweep, armed bug flagged)"
