(* Chaos smoke: a small deterministic seed sweep across both STMs (all
   three variants) and all four structures, checking every recorded history
   for serializability.  `dune build @chaos-smoke` runs it alone; the
   runtest alias folds it into the regular test run. *)

module Stress = Tstm_harness.Stress
module Scenario = Tstm_harness.Scenario
module Workload = Tstm_harness.Workload

let () =
  let structures =
    [ Workload.List; Workload.Skiplist; Workload.Rbtree; Workload.Hashset ]
  in
  let r =
    Stress.sweep ~seeds:3 ~stms:Scenario.all_stms ~structures
      { Stress.default with Stress.max_retries = 6 }
  in
  Printf.printf
    "chaos-smoke: %d runs, %d ops checked, %d injections, %d commits, %d \
     aborts, %d escalations\n"
    r.Stress.runs r.Stress.total_events r.Stress.total_injected
    r.Stress.total_commits r.Stress.total_aborts r.Stress.total_escalations;
  (match r.Stress.first_failure with
  | Some (spec, rep) ->
      let v = match rep.Stress.violation with Some m -> m | None -> "?" in
      Printf.eprintf "chaos-smoke: FAILED\n%s\nreplay: %s\n" v
        (Stress.repro_command spec);
      exit 1
  | None -> ());
  if r.Stress.total_injected = 0 then begin
    Printf.eprintf "chaos-smoke: FAILED: no chaos injections fired\n";
    exit 1
  end;
  print_endline "chaos-smoke: OK (zero serializability violations)"
