(* The wall-clock observability layer's pure parts: the minimal JSON
   printer/parser, the Tm_stats JSON export, BENCH_* snapshot
   serialization, the noise-aware regression comparator, and the
   monotonic clock. *)

module Json = Tstm_obs.Json
module Bench = Tstm_obs.Bench
module Mono = Tstm_obs.Monotonic
module Stats = Tstm_tm.Tm_stats

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let rec json_equal a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> x = y
  | Json.String x, Json.String y -> x = y
  | Json.List x, Json.List y ->
      List.length x = List.length y && List.for_all2 json_equal x y
  | Json.Obj x, Json.Obj y ->
      List.length x = List.length y
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && json_equal v1 v2)
           x y
  | _ -> false

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("f", Json.Bool false);
        ("int", Json.Int (-42));
        ("float", Json.Float 0.2);
        ("big", Json.Float 684468.38385923917);
        ("intf", Json.Float 20.0);
        ("str", Json.String "a \"quoted\"\nline\tand \\ backslash");
        ("empty_l", Json.List []);
        ("empty_o", Json.Obj []);
        ( "nested",
          Json.List [ Json.Int 1; Json.Obj [ ("k", Json.String "v") ] ] );
      ]
  in
  let s = Json.to_string v in
  let v' = Json.of_string s in
  Alcotest.(check bool) "round-trips structurally" true (json_equal v v');
  Alcotest.(check string) "reprint is byte-identical" s (Json.to_string v');
  (* Non-integral floats must survive: this was a real printer bug (every
     finite non-integral float clamped to 0.0). *)
  (match Option.bind (Json.member "float" v') Json.to_float with
  | Some f -> Alcotest.(check (float 1e-12)) "0.2 survives" 0.2 f
  | None -> Alcotest.fail "float member lost");
  match Option.bind (Json.member "big" v') Json.to_float with
  | Some f ->
      Alcotest.(check (float 1e-6)) "17 digits survive" 684468.38385923917 f
  | None -> Alcotest.fail "big member lost"

let test_json_nonfinite () =
  (* NaN/inf are not JSON: the printer clamps rather than emitting tokens
     the parser (or any other tool) would reject. *)
  let s = Json.to_string (Json.List [ Json.Float Float.nan; Json.Float Float.infinity ]) in
  match Json.of_string s with
  | Json.List [ Json.Float a; Json.Float b ] ->
      Alcotest.(check (float 0.0)) "nan clamped" 0.0 a;
      Alcotest.(check (float 0.0)) "inf clamped" 0.0 b
  | _ -> Alcotest.fail "unexpected shape"

let test_json_errors () =
  let rejects s =
    Alcotest.(check bool)
      (Printf.sprintf "rejects %S" s)
      true
      (Json.of_string_opt s = None)
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\" 1}";
  rejects "tru";
  rejects "1 2";
  rejects "{\"a\": 1} x";
  Alcotest.(check bool)
    "accepts surrounding whitespace" true
    (Json.of_string_opt "  { \"a\" : [ 1 , 2 ] }\n" <> None)

let test_json_accessors () =
  let v = Json.of_string "{\"i\": 3, \"f\": 2.5, \"fi\": 4.0, \"s\": \"x\"}" in
  Alcotest.(check (option int)) "to_int Int" (Some 3)
    (Option.bind (Json.member "i" v) Json.to_int);
  Alcotest.(check (option int))
    "to_int integral Float" (Some 4)
    (Option.bind (Json.member "fi" v) Json.to_int);
  Alcotest.(check (option int)) "to_int non-integral" None
    (Option.bind (Json.member "f" v) Json.to_int);
  Alcotest.(check (option (float 0.0)))
    "to_float Int" (Some 3.0)
    (Option.bind (Json.member "i" v) Json.to_float);
  Alcotest.(check (option string)) "member missing" None
    (Option.bind (Json.member "zzz" v) Json.to_str)

(* ------------------------------------------------------------------ *)
(* Tm_stats JSON round-trip                                            *)
(* ------------------------------------------------------------------ *)

let test_stats_roundtrip () =
  let s = Stats.create () in
  s.Stats.commits <- 101;
  s.Stats.commits_read_only <- 7;
  s.Stats.aborts_read_conflict <- 11;
  s.Stats.aborts_write_conflict <- 13;
  s.Stats.aborts_validation <- 17;
  s.Stats.aborts_rollover <- 19;
  s.Stats.aborts_killed <- 23;
  s.Stats.reads <- 1009;
  s.Stats.writes <- 227;
  s.Stats.extensions <- 29;
  s.Stats.validations <- 31;
  s.Stats.val_locks_processed <- 3001;
  s.Stats.val_locks_skipped <- 41;
  s.Stats.escalations <- 3;
  s.Stats.backoff_cycles <- 777;
  s.Stats.max_retries_seen <- 9;
  s.Stats.cm_switches <- 2;
  for i = 0 to Stats.retry_hist_buckets - 1 do
    s.Stats.retry_hist.(i) <- i * i
  done;
  match Stats.of_json (Stats.to_json s) with
  | Error e -> Alcotest.fail e
  | Ok s' ->
      (* A second serialization is the cheapest full-field comparison. *)
      Alcotest.(check string)
        "all counters survive"
        (Json.to_string (Stats.to_json s))
        (Json.to_string (Stats.to_json s'));
      Alcotest.(check int) "aborts recompute" (Stats.aborts s) (Stats.aborts s')

(* Property-style: any counter combination survives the JSON round-trip,
   fairness counters (kills, retry ceilings, CM switches) and the full
   retry histogram included — not just the hand-picked values above. *)
let test_stats_roundtrip_random () =
  let g = Tstm_util.Xrand.create 0xbe5c in
  let r () = Tstm_util.Xrand.int g 1_000_000 in
  for iter = 1 to 100 do
    let s = Stats.create () in
    s.Stats.commits <- r ();
    s.Stats.commits_read_only <- r ();
    s.Stats.aborts_read_conflict <- r ();
    s.Stats.aborts_write_conflict <- r ();
    s.Stats.aborts_validation <- r ();
    s.Stats.aborts_rollover <- r ();
    s.Stats.aborts_killed <- r ();
    s.Stats.reads <- r ();
    s.Stats.writes <- r ();
    s.Stats.extensions <- r ();
    s.Stats.validations <- r ();
    s.Stats.val_locks_processed <- r ();
    s.Stats.val_locks_skipped <- r ();
    s.Stats.escalations <- r ();
    s.Stats.backoff_cycles <- r ();
    s.Stats.max_retries_seen <- r ();
    s.Stats.cm_switches <- r ();
    for i = 0 to Stats.retry_hist_buckets - 1 do
      s.Stats.retry_hist.(i) <- r ()
    done;
    match Stats.of_json (Stats.to_json s) with
    | Error e -> Alcotest.fail (Printf.sprintf "iteration %d: %s" iter e)
    | Ok s' ->
        if Json.to_string (Stats.to_json s) <> Json.to_string (Stats.to_json s')
        then
          Alcotest.fail
            (Printf.sprintf "iteration %d: round-trip changed the record" iter)
  done

let test_stats_of_json_errors () =
  (match Stats.of_json (Json.Obj [ ("commits", Json.Int 1) ]) with
  | Ok _ -> Alcotest.fail "accepted a truncated object"
  | Error e ->
      Alcotest.(check bool)
        "names the missing field" true
        (String.length e > 0));
  match Stats.of_json Json.Null with
  | Ok _ -> Alcotest.fail "accepted null"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Bench snapshots                                                     *)
(* ------------------------------------------------------------------ *)

let sample thr =
  { Bench.thr; elapsed_s = 0.1; commits = int_of_float (thr /. 10.0); aborts = 1 }

let cell ?(stm = "tinystm-wb") ?(domains = 2) thrs =
  {
    Bench.stm;
    structure = "rbtree";
    domains;
    workload = "uniform";
    size = 256;
    update_pct = 20.0;
    samples = List.map sample thrs;
    stats = Json.Obj [ ("tm", Json.Obj [ ("commits", Json.Int 42) ]) ];
  }

let snap cells =
  {
    Bench.rev = "deadbee";
    created_unix = 1.75e9;
    duration_s = 0.2;
    warmup_s = 0.05;
    reps = 3;
    host =
      {
        Bench.cores = 8;
        ocaml = "5.1.1";
        os_type = "Unix";
        word_size = 64;
        clock_res_ns = 30;
      };
    cells;
  }

let test_snapshot_roundtrip () =
  let t = snap [ cell [ 100.5; 110.25; 90.75 ]; cell ~domains:4 [ 50.0 ] ] in
  let s = Bench.to_string t in
  Alcotest.(check bool)
    "passes the repo JSON validator" true
    (Tstm_obs.Export.json_is_valid s);
  match Bench.of_string s with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check string) "byte-stable round-trip" s (Bench.to_string t');
      Alcotest.(check int) "cells survive" 2 (List.length t'.Bench.cells);
      Alcotest.(check (float 1e-9))
        "mean recomputed identically" (Bench.cell_mean (List.hd t.Bench.cells))
        (Bench.cell_mean (List.hd t'.Bench.cells))

(* First-occurrence substring replacement (avoids a Str dependency). *)
let replace ~sub ~by s =
  let n = String.length sub in
  let rec find i =
    if i + n > String.length s then None
    else if String.sub s i n = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

let test_snapshot_schema_guard () =
  let s = Bench.to_string (snap []) in
  let bad = replace ~sub:"tstm-bench/1" ~by:"tstm-bench/999" s in
  match Bench.of_string bad with
  | Ok _ -> Alcotest.fail "accepted an unknown schema"
  | Error e ->
      Alcotest.(check bool)
        "mentions the schema" true
        (String.length e > 0)

let test_cell_stats () =
  let c = cell [ 100.0; 100.0; 100.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 100.0 (Bench.cell_mean c);
  Alcotest.(check (float 1e-9)) "ci95 of constant samples" 0.0
    (Bench.cell_ci95 c);
  Alcotest.(check (float 1e-9)) "ci95 of one sample" 0.0
    (Bench.cell_ci95 (cell [ 123.0 ]));
  (* Two samples: ci95 = t975(1) * sd / sqrt 2 with sd = |a-b| / sqrt 2. *)
  let c2 = Bench.cell_ci95 (cell [ 90.0; 110.0 ]) in
  Alcotest.(check (float 1e-6)) "ci95 of two samples" (12.706 *. 10.0) c2

let test_compare_thresholds () =
  let compare_one old_thrs new_thrs =
    let v =
      Bench.compare
        ~old_snap:(snap [ cell old_thrs ])
        ~new_snap:(snap [ cell new_thrs ])
        ()
    in
    match v.Bench.deltas with
    | [ d ] -> (d, v)
    | _ -> Alcotest.fail "expected one delta"
  in
  (* Clear regression: tight samples, 20% drop > 10% threshold. *)
  let d, v = compare_one [ 100.0; 100.0; 100.0 ] [ 80.0; 80.0; 80.0 ] in
  Alcotest.(check bool) "clear drop flags" true d.Bench.regression;
  Alcotest.(check int) "counted" 1 v.Bench.regressions;
  (* Small drop: beyond noise (zero CI) but below the percent floor. *)
  let d, _ = compare_one [ 100.0; 100.0; 100.0 ] [ 95.0; 95.0; 95.0 ] in
  Alcotest.(check bool) "5% drop is tolerated" false d.Bench.regression;
  (* Noisy drop: 20% down but the new samples' CI swallows it. *)
  let d, _ =
    compare_one [ 100000.0; 100000.0; 100000.0 ] [ 40000.0; 120000.0; 80000.0 ]
  in
  Alcotest.(check bool) "noise masks the drop" false d.Bench.regression;
  (* Improvement never flags. *)
  let d, _ = compare_one [ 100.0; 100.0; 100.0 ] [ 200.0; 200.0; 200.0 ] in
  Alcotest.(check bool) "improvement ok" false d.Bench.regression;
  (* The percent floor is adjustable. *)
  let v =
    Bench.compare ~threshold_pct:2.0
      ~old_snap:(snap [ cell [ 100.0; 100.0; 100.0 ] ])
      ~new_snap:(snap [ cell [ 95.0; 95.0; 95.0 ] ])
      ()
  in
  Alcotest.(check int) "tighter floor flags 5%" 1 v.Bench.regressions

let test_compare_matching () =
  let v =
    Bench.compare
      ~old_snap:(snap [ cell [ 1.0 ]; cell ~domains:4 [ 1.0 ] ])
      ~new_snap:(snap [ cell [ 1.0 ]; cell ~stm:"tl2" [ 1.0 ] ])
      ()
  in
  Alcotest.(check int) "one matched delta" 1 (List.length v.Bench.deltas);
  Alcotest.(check (list string))
    "old-only cell reported missing"
    [ "tinystm-wb/rbtree/d4/uniform/n256/u20" ]
    v.Bench.missing;
  Alcotest.(check (list string))
    "new-only cell reported added"
    [ "tl2/rbtree/d2/uniform/n256/u20" ]
    v.Bench.added

let test_compare_disjoint () =
  (* Entirely disjoint cell sets: nothing to diff.  The verdict must say
     so explicitly rather than printing an empty table that reads as "no
     regressions". *)
  let v =
    Bench.compare
      ~old_snap:(snap [ cell [ 1.0 ]; cell ~domains:4 [ 1.0 ] ])
      ~new_snap:(snap [ cell ~stm:"tl2" [ 1.0 ] ])
      ()
  in
  Alcotest.(check int) "no deltas" 0 (List.length v.Bench.deltas);
  Alcotest.(check int) "no regressions" 0 v.Bench.regressions;
  let rendered = Bench.render_verdict v in
  let contains sub =
    let n = String.length sub and m = String.length rendered in
    let rec go i = i + n <= m && (String.sub rendered i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "diagnostic names the problem" true
    (contains "no comparable cells");
  Alcotest.(check bool) "counts the old-only cells" true (contains "2 only in old");
  Alcotest.(check bool) "counts the new-only cells" true (contains "1 only in new")

(* ------------------------------------------------------------------ *)
(* bench compare CLI driver: unreadable / newer-schema inputs           *)
(* ------------------------------------------------------------------ *)

let with_temp_file content f =
  let path = Filename.temp_file "tstm_bench_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      f path)

let test_compare_cli_robustness () =
  let good = Bench.to_string (snap [ cell [ 100.0; 100.0; 100.0 ] ]) in
  let newer = replace ~sub:"tstm-bench/1" ~by:"tstm-bench/999" good in
  let run ~report_only old_c new_c =
    with_temp_file old_c (fun old_path ->
        with_temp_file new_c (fun new_path ->
            Tstm_exec.Cli.run_bench_compare ~threshold:10.0 ~report_only
              ~old_path ~new_path ()))
  in
  (* A snapshot from a newer binary must fail loudly, not misreport. *)
  Alcotest.(check bool)
    "newer schema fails the comparison" false
    (run ~report_only:false good newer);
  Alcotest.(check bool)
    "newer schema under --report-only still exits clean" true
    (run ~report_only:true good newer);
  (* Malformed JSON likewise. *)
  Alcotest.(check bool)
    "garbage input fails the comparison" false
    (run ~report_only:false good "{not json");
  Alcotest.(check bool)
    "garbage input under --report-only still exits clean" true
    (run ~report_only:true good "{not json");
  (* A missing file is a load failure, not a crash. *)
  Alcotest.(check bool)
    "missing file fails the comparison" false
    (with_temp_file good (fun old_path ->
         Tstm_exec.Cli.run_bench_compare ~threshold:10.0 ~report_only:false
           ~old_path ~new_path:"/nonexistent/BENCH_missing.json" ()));
  (* Identical healthy snapshots still compare clean end to end. *)
  Alcotest.(check bool)
    "healthy snapshots pass" true
    (run ~report_only:false good good)

(* ------------------------------------------------------------------ *)
(* Monotonic clock                                                     *)
(* ------------------------------------------------------------------ *)

let test_monotonic () =
  let prev = ref (Mono.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Mono.now_ns () in
    if t < !prev then Alcotest.fail "clock went backwards";
    prev := t
  done;
  let t0 = Mono.now_ns () in
  Unix.sleepf 0.01;
  let dt = Mono.elapsed_s ~since:t0 in
  Alcotest.(check bool)
    (Printf.sprintf "10ms sleep measures as %.4fs" dt)
    true
    (dt >= 0.009 && dt < 1.0);
  Alcotest.(check bool) "resolution is positive" true (Mono.resolution_ns () >= 1)

let () =
  Alcotest.run "bench"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "nonfinite" `Quick test_json_nonfinite;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "tm-stats",
        [
          Alcotest.test_case "roundtrip" `Quick test_stats_roundtrip;
          Alcotest.test_case "roundtrip random" `Quick
            test_stats_roundtrip_random;
          Alcotest.test_case "errors" `Quick test_stats_of_json_errors;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "schema guard" `Quick test_snapshot_schema_guard;
          Alcotest.test_case "cell stats" `Quick test_cell_stats;
        ] );
      ( "compare",
        [
          Alcotest.test_case "thresholds" `Quick test_compare_thresholds;
          Alcotest.test_case "matching" `Quick test_compare_matching;
          Alcotest.test_case "disjoint" `Quick test_compare_disjoint;
          Alcotest.test_case "cli robustness" `Quick
            test_compare_cli_robustness;
        ] );
      ( "monotonic",
        [ Alcotest.test_case "monotonic" `Quick test_monotonic ] );
    ]
