(* Tests for the virtual word memory: bounds, allocator recycling, spatial
   locality of the bump allocator, thread safety under both runtimes. *)

module Vmm_sim = Tstm_vmm.Vmm.Make (Tstm_runtime.Runtime_sim)
module Vmm_real = Tstm_vmm.Vmm.Make (Tstm_runtime.Runtime_real)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

module Common (R : Tstm_runtime.Runtime_intf.S) (V : module type of Tstm_vmm.Vmm.Make (R)) =
struct
  let test_load_store () =
    let m = V.create ~words:100 in
    V.store m 5 99;
    check_int "load" 99 (V.load m 5);
    check_int "others 0" 0 (V.load m 6)

  let test_null_reserved () =
    let m = V.create ~words:10 in
    check_int "null" 0 V.null;
    Alcotest.check_raises "store null"
      (Invalid_argument "Vmm: address 0 out of bounds") (fun () ->
        V.store m V.null 1);
    let a = V.alloc m 1 in
    check_bool "alloc never returns null" true (a <> V.null)

  let test_bounds () =
    let m = V.create ~words:10 in
    Alcotest.check_raises "past end"
      (Invalid_argument "Vmm: address 11 out of bounds") (fun () ->
        ignore (V.load m 11));
    V.store m 10 1;
    check_int "last word usable" 1 (V.load m 10)

  let test_alloc_adjacent () =
    (* Consecutive allocations must be adjacent: the #shifts tuning parameter
       depends on this spatial locality. *)
    let m = V.create ~words:1000 in
    let a = V.alloc m 4 in
    let b = V.alloc m 4 in
    let c = V.alloc m 4 in
    check_int "b after a" (a + 4) b;
    check_int "c after b" (b + 4) c

  let test_alloc_distinct () =
    let m = V.create ~words:1000 in
    let seen = Hashtbl.create 64 in
    for _ = 1 to 50 do
      let a = V.alloc m 3 in
      for w = a to a + 2 do
        check_bool "word not double-allocated" false (Hashtbl.mem seen w);
        Hashtbl.replace seen w ()
      done
    done

  let test_free_recycles () =
    let m = V.create ~words:100 in
    let a = V.alloc m 8 in
    V.free m a 8;
    let b = V.alloc m 8 in
    check_int "same block recycled" a b

  let test_free_lists_per_class () =
    let m = V.create ~words:1000 in
    let a2 = V.alloc m 2 in
    let a3 = V.alloc m 3 in
    V.free m a2 2;
    V.free m a3 3;
    check_int "class 3 pops its own" a3 (V.alloc m 3);
    check_int "class 2 pops its own" a2 (V.alloc m 2)

  let test_live_words () =
    let m = V.create ~words:100 in
    check_int "empty" 0 (V.live_words m);
    let a = V.alloc m 10 in
    check_int "after alloc" 10 (V.live_words m);
    let b = V.alloc m 5 in
    check_int "after second" 15 (V.live_words m);
    V.free m a 10;
    check_int "after free" 5 (V.live_words m);
    V.free m b 5;
    check_int "empty again" 0 (V.live_words m);
    check_int "total counts recycling" 15 (V.allocated_since_start m)

  let test_large_blocks_bump_only () =
    (* Blocks beyond the free-list class limit (256 words) are bump-only:
       freeing them updates accounting but never recycles the space. *)
    let m = V.create ~words:2048 in
    let a = V.alloc m 300 in
    V.free m a 300;
    check_int "accounting updated" 0 (V.live_words m);
    let b = V.alloc m 300 in
    check_bool "not recycled" true (b <> a)

  let test_out_of_memory () =
    let m = V.create ~words:10 in
    ignore (V.alloc m 8);
    Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
        ignore (V.alloc m 8))

  let test_free_out_of_range () =
    let m = V.create ~words:100 in
    let rejects msg f =
      match f () with
      | () -> Alcotest.failf "%s: accepted" msg
      | exception Invalid_argument _ -> ()
    in
    rejects "free at null" (fun () -> V.free m 0 4);
    rejects "free below range" (fun () -> V.free m (-3) 4);
    rejects "free past end" (fun () -> V.free m 101 2);
    rejects "free straddling end" (fun () -> V.free m 99 4);
    rejects "free of size 0" (fun () -> V.free m 5 0);
    (* A rejected free must not disturb the live-word accounting. *)
    let a = V.alloc m 8 in
    let live = V.live_words m in
    rejects "free straddling end after alloc" (fun () -> V.free m 99 4);
    check_int "accounting intact after rejection" live (V.live_words m);
    V.free m a 8

  let test_double_free_detected () =
    let m = V.create ~words:1000 in
    let a = V.alloc m 4 in
    V.free m a 4;
    (match V.free m a 4 with
    | () -> Alcotest.fail "double free accepted"
    | exception Invalid_argument _ -> ());
    check_int "accounting not corrupted by double free" 0 (V.live_words m);
    (* The block is still recyclable exactly once. *)
    check_int "block recycled once" a (V.alloc m 4);
    let b = V.alloc m 4 in
    check_bool "not handed out twice" true (b <> a)

  let test_double_free_deep_in_list () =
    (* The duplicate need not be the list head: free three blocks, then
       re-free the first one pushed (now deepest in the free list). *)
    let m = V.create ~words:1000 in
    let a = V.alloc m 4 in
    let b = V.alloc m 4 in
    let c = V.alloc m 4 in
    V.free m a 4;
    V.free m b 4;
    V.free m c 4;
    (match V.free m a 4 with
    | () -> Alcotest.fail "deep double free accepted"
    | exception Invalid_argument _ -> ());
    check_int "accounting intact" 0 (V.live_words m)

  let rejects_invalid msg f =
    match f () with
    | () -> Alcotest.failf "%s: accepted" msg
    | exception Invalid_argument _ -> ()

  let test_large_free_validated () =
    (* Large (non-recyclable) blocks are tracked by extent, so their frees
       are validated even without a free list to scan. *)
    let m = V.create ~words:4096 in
    let a = V.alloc m 300 in
    rejects_invalid "never-allocated large free" (fun () ->
        V.free m (a + 1) 300);
    rejects_invalid "mismatched-size large free" (fun () -> V.free m a 301);
    check_int "rejections left accounting intact" 300 (V.live_words m);
    V.free m a 300;
    check_int "valid free accounted" 0 (V.live_words m)

  let test_large_double_free () =
    let m = V.create ~words:4096 in
    let a = V.alloc m 300 in
    V.free m a 300;
    rejects_invalid "large double free" (fun () -> V.free m a 300);
    check_int "accounting not corrupted" 0 (V.live_words m)

  let test_large_extent_per_block () =
    (* Distinct large blocks are tracked independently; freeing one must
       not disturb the other's extent. *)
    let m = V.create ~words:4096 in
    let a = V.alloc m 300 in
    let b = V.alloc m 400 in
    V.free m a 300;
    rejects_invalid "first block already freed" (fun () -> V.free m a 300);
    V.free m b 400;
    check_int "both accounted" 0 (V.live_words m)

  let test_parallel_alloc_no_overlap () =
    let m = V.create ~words:100_000 in
    let n = 4 and per = 200 in
    let results = Array.make (n * per) 0 in
    R.run ~nthreads:n (fun tid ->
        for j = 0 to per - 1 do
          results.((tid * per) + j) <- V.alloc m 5
        done);
    let seen = Hashtbl.create 1024 in
    Array.iter
      (fun base ->
        for w = base to base + 4 do
          check_bool "no overlap" false (Hashtbl.mem seen w);
          Hashtbl.replace seen w ()
        done)
      results

  let test_parallel_alloc_free_churn () =
    let m = V.create ~words:50_000 in
    let n = 4 in
    R.run ~nthreads:n (fun tid ->
        let g = Tstm_util.Xrand.create (100 + tid) in
        let mine = ref [] in
        for _ = 1 to 300 do
          if Tstm_util.Xrand.bool g || !mine = [] then
            mine := V.alloc m 4 :: !mine
          else
            match !mine with
            | a :: rest ->
                V.free m a 4;
                mine := rest
            | [] -> ()
        done;
        List.iter (fun a -> V.free m a 4) !mine);
    check_int "all freed" 0 (V.live_words m)

  let tests =
    [
      Alcotest.test_case "load/store" `Quick test_load_store;
      Alcotest.test_case "null reserved" `Quick test_null_reserved;
      Alcotest.test_case "bounds" `Quick test_bounds;
      Alcotest.test_case "adjacent allocation" `Quick test_alloc_adjacent;
      Alcotest.test_case "distinct blocks" `Quick test_alloc_distinct;
      Alcotest.test_case "free recycles" `Quick test_free_recycles;
      Alcotest.test_case "per-class free lists" `Quick
        test_free_lists_per_class;
      Alcotest.test_case "live accounting" `Quick test_live_words;
      Alcotest.test_case "large blocks bump-only" `Quick
        test_large_blocks_bump_only;
      Alcotest.test_case "out of memory" `Quick test_out_of_memory;
      Alcotest.test_case "free out of range" `Quick test_free_out_of_range;
      Alcotest.test_case "double free detected" `Quick
        test_double_free_detected;
      Alcotest.test_case "large free validated" `Quick
        test_large_free_validated;
      Alcotest.test_case "large double free" `Quick test_large_double_free;
      Alcotest.test_case "large extents per block" `Quick
        test_large_extent_per_block;
      Alcotest.test_case "double free deep in list" `Quick
        test_double_free_deep_in_list;
      Alcotest.test_case "parallel alloc" `Quick test_parallel_alloc_no_overlap;
      Alcotest.test_case "parallel churn" `Quick test_parallel_alloc_free_churn;
    ]
end

module Sim_tests = Common (Tstm_runtime.Runtime_sim) (Vmm_sim)
module Real_tests = Common (Tstm_runtime.Runtime_real) (Vmm_real)

(* qcheck: a random alloc/free trace never double-allocates a live word and
   live accounting stays consistent. *)
let prop_alloc_free_trace =
  QCheck.Test.make ~name:"random alloc/free trace keeps invariants" ~count:60
    QCheck.(list (pair bool (int_range 1 20)))
    (fun ops ->
      let m = Vmm_sim.create ~words:100_000 in
      let live = Hashtbl.create 64 in
      let blocks = ref [] in
      let expected_live = ref 0 in
      List.iter
        (fun (is_alloc, size) ->
          if is_alloc || !blocks = [] then begin
            let a = Vmm_sim.alloc m size in
            for w = a to a + size - 1 do
              if Hashtbl.mem live w then failwith "double allocation";
              Hashtbl.replace live w ()
            done;
            blocks := (a, size) :: !blocks;
            expected_live := !expected_live + size
          end
          else
            match !blocks with
            | (a, s) :: rest ->
                for w = a to a + s - 1 do
                  Hashtbl.remove live w
                done;
                Vmm_sim.free m a s;
                blocks := rest;
                expected_live := !expected_live - s
            | [] -> ())
        ops;
      Vmm_sim.live_words m = !expected_live)

let () =
  Alcotest.run "tstm_vmm"
    [
      ("sim", Sim_tests.tests);
      ("domains", Real_tests.tests);
      ("props", List.map QCheck_alcotest.to_alcotest [ prop_alloc_free_trace ]);
    ]
