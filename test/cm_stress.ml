(* CM stress: deterministic seed sweeps proving every contention manager
   preserves serializability on every STM variant and structure — 50 seeds
   of linearizability checking per policy, plus a smaller sweep with the
   happens-before sanitizer armed, plus adversarial key patterns under the
   kill-capable policies.  `dune build @cm-stress` runs it alone; the
   runtest alias folds it into the regular test run. *)

module Stress = Tstm_harness.Stress
module Scenario = Tstm_harness.Scenario
module Workload = Tstm_harness.Workload

let structures =
  [ Workload.List; Workload.Skiplist; Workload.Rbtree; Workload.Hashset ]

let policies = [ "backoff"; "suicide"; "karma"; "greedy"; "serialize:4" ]

let fail_with label (spec, (rep : Stress.report)) =
  Printf.eprintf "cm-stress: FAILED (%s)\n" label;
  (match rep.Stress.violation with
  | Some m -> Printf.eprintf "%s\n" m
  | None -> ());
  List.iter
    (fun f -> Printf.eprintf "%s\n" (Tstm_san.San.render f))
    rep.Stress.san_findings;
  Printf.eprintf "replay: %s\n" (Stress.repro_command spec);
  exit 1

let sweep label ~seeds spec =
  let r = Stress.sweep ~seeds ~stms:Scenario.all_stms ~structures spec in
  Printf.printf "cm-stress: %-24s %4d runs, %7d ops, %6d commits, %6d aborts\n"
    label r.Stress.runs r.Stress.total_events r.Stress.total_commits
    r.Stress.total_aborts;
  (match r.Stress.first_failure with
  | Some failure -> fail_with label failure
  | None -> ());
  r.Stress.runs

let () =
  let base = { Stress.default with Stress.max_retries = 6 } in
  let total = ref 0 in
  (* Serializability: 50 seeds per policy across every STM and structure. *)
  List.iter
    (fun cm ->
      total := !total + sweep cm ~seeds:50 { base with Stress.cm })
    policies;
  (* Same matrix with the happens-before sanitizer armed: the kill path
     (remote aborts) must leave no sanitizer-visible protocol violation. *)
  List.iter
    (fun cm ->
      total :=
        !total + sweep (cm ^ " +san") ~seeds:2 { base with Stress.cm; san = true })
    policies;
  (* Adversarial key patterns under the kill-capable policies: skewed
     contention is where wrongful kills would corrupt histories. *)
  List.iter
    (fun (cm, pattern) ->
      let label =
        Printf.sprintf "%s %s" cm (Workload.pattern_to_string pattern)
      in
      total := !total + sweep label ~seeds:10 { base with Stress.cm; pattern })
    [
      ("karma", Workload.Zipf 1.2);
      ("karma", Workload.Hotspot 4);
      ("greedy", Workload.Zipf 1.2);
      ("greedy", Workload.Bimodal 8);
    ];
  Printf.printf "cm-stress: OK (%d runs, zero violations)\n" !total
