(* Tests for the TL2 baseline: Bloom filter properties, commit-time locking
   semantics, isolation, and TL2-specific behaviour (no extension, buffered
   writes invisible before commit). *)

open Tstm_tl2
module Bloom = Tstm_util.Bloom

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Bloom                                                              *)
(* ------------------------------------------------------------------ *)

let test_bloom_empty () =
  let b = Bloom.create () in
  check_bool "nothing in empty" false (Bloom.may_contain b 42)

let test_bloom_add_query () =
  let b = Bloom.create () in
  Bloom.add b 7;
  check_bool "added found" true (Bloom.may_contain b 7)

let test_bloom_clear () =
  let b = Bloom.create () in
  Bloom.add b 7;
  Bloom.clear b;
  check_bool "cleared" false (Bloom.may_contain b 7)

let prop_bloom_no_false_negatives =
  QCheck.Test.make ~name:"bloom has no false negatives" ~count:300
    QCheck.(list (int_range 0 1_000_000))
    (fun addrs ->
      let b = Bloom.create () in
      List.iter (Bloom.add b) addrs;
      List.for_all (Bloom.may_contain b) addrs)

let test_bloom_selective () =
  (* With few elements, most absent addresses are rejected. *)
  let b = Bloom.create () in
  List.iter (Bloom.add b) [ 1; 2; 3 ];
  let false_positives = ref 0 in
  for a = 1000 to 2000 do
    if Bloom.may_contain b a then incr false_positives
  done;
  check_bool
    (Printf.sprintf "few false positives (%d/1001)" !false_positives)
    true
    (!false_positives < 300)

(* ------------------------------------------------------------------ *)
(* TL2 semantics                                                      *)
(* ------------------------------------------------------------------ *)

exception User_error

module Semantics (R : Tstm_runtime.Runtime_intf.S) () = struct
  module T = Tl2.Make (R)

  let make ?(n_locks = 1 lsl 10) ?(words = 4096) () =
    T.create ~n_locks ~memory_words:words ()

  let test_read_write_commit () =
    let t = make () in
    let a = T.atomically t (fun tx -> T.alloc tx 2) in
    T.atomically t (fun tx ->
        T.write tx a 10;
        T.write tx (a + 1) 20);
    let x, y = T.atomically t (fun tx -> (T.read tx a, T.read tx (a + 1))) in
    check_int "first" 10 x;
    check_int "second" 20 y

  let test_read_your_writes () =
    let t = make () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    T.atomically t (fun tx ->
        T.write tx a 1;
        check_int "own write" 1 (T.read tx a);
        T.write tx a 2;
        check_int "own overwrite" 2 (T.read tx a));
    check_int "committed" 2 (T.atomically t (fun tx -> T.read tx a))

  let test_writes_buffered_until_commit () =
    let t = make () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    T.atomically t (fun tx -> T.write tx a 5);
    T.atomically t (fun tx ->
        T.write tx a 99;
        (* Commit-time locking: memory must still hold the old value. *)
        check_int "memory untouched inside tx" 5 (T.V.load (T.memory t) a));
    check_int "visible after commit" 99 (T.V.load (T.memory t) a)

  let test_user_exception_aborts () =
    let t = make () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    T.atomically t (fun tx -> T.write tx a 5);
    (try
       T.atomically t (fun tx ->
           T.write tx a 99;
           raise User_error)
     with User_error -> ());
    check_int "rolled back" 5 (T.atomically t (fun tx -> T.read tx a))

  let test_read_only_rejects_writes () =
    let t = make () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    (try
       T.atomically ~read_only:true t (fun tx -> T.write tx a 1);
       Alcotest.fail "expected Invalid_argument"
     with Invalid_argument _ -> ());
    check_int "usable after" 0 (T.atomically t (fun tx -> T.read tx a))

  let test_alloc_abort_reclaims () =
    let t = make () in
    let before = T.V.live_words (T.memory t) in
    (try
       T.atomically t (fun tx ->
           ignore (T.alloc tx 8);
           raise User_error)
     with User_error -> ());
    check_int "reclaimed" before (T.V.live_words (T.memory t))

  let test_free_commit_releases () =
    let t = make () in
    let a = T.atomically t (fun tx -> T.alloc tx 8) in
    let live = T.V.live_words (T.memory t) in
    T.atomically t (fun tx -> T.free tx a 8);
    check_int "freed" (live - 8) (T.V.live_words (T.memory t))

  let test_counter_no_lost_updates () =
    let t = make ~words:64 () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    let n = 4 and per = 200 in
    R.run ~nthreads:n (fun _ ->
        for _ = 1 to per do
          T.atomically t (fun tx -> T.write tx a (T.read tx a + 1))
        done);
    check_int "exact" (n * per) (T.atomically t (fun tx -> T.read tx a))

  let test_bank_conservation () =
    let accounts = 16 and n = 4 and per = 150 in
    let t = make ~words:1024 ~n_locks:64 () in
    let base = T.atomically t (fun tx -> T.alloc tx accounts) in
    T.atomically t (fun tx ->
        for i = 0 to accounts - 1 do
          T.write tx (base + i) 100
        done);
    R.run ~nthreads:n (fun tid ->
        let g = Tstm_util.Xrand.create (7100 + tid) in
        for _ = 1 to per do
          let src = Tstm_util.Xrand.int g accounts
          and dst = Tstm_util.Xrand.int g accounts
          and amount = Tstm_util.Xrand.int g 10 in
          T.atomically t (fun tx ->
              let s = T.read tx (base + src) in
              let d = T.read tx (base + dst) in
              if src <> dst then begin
                T.write tx (base + src) (s - amount);
                T.write tx (base + dst) (d + amount)
              end)
        done);
    let total =
      T.atomically ~read_only:true t (fun tx ->
          let sum = ref 0 in
          for i = 0 to accounts - 1 do
            sum := !sum + T.read tx (base + i)
          done;
          !sum)
    in
    check_int "conserved" (accounts * 100) total

  let test_snapshot_consistency () =
    let t = make ~n_locks:4 ~words:64 () in
    let a = T.atomically t (fun tx -> T.alloc tx 2) in
    let violations = Atomic.make 0 in
    R.run ~nthreads:4 (fun tid ->
        let g = Tstm_util.Xrand.create (9100 + tid) in
        if tid < 2 then
          for _ = 1 to 200 do
            T.atomically t (fun tx ->
                let v = Tstm_util.Xrand.int g 1000 in
                T.write tx a v;
                T.write tx (a + 1) v)
          done
        else
          for _ = 1 to 200 do
            let x, y =
              T.atomically ~read_only:true t (fun tx ->
                  (T.read tx a, T.read tx (a + 1)))
            in
            if x <> y then Atomic.incr violations
          done);
    check_int "no torn snapshots" 0 (Atomic.get violations)

  let test_large_write_set () =
    (* Exercises Bloom + write-set search and multi-lock commit. *)
    let t = make ~words:4096 ~n_locks:64 () in
    let n = 300 in
    let base = T.atomically t (fun tx -> T.alloc tx n) in
    T.atomically t (fun tx ->
        for i = 0 to n - 1 do
          T.write tx (base + i) i
        done;
        (* Read-after-write across the whole set. *)
        for i = 0 to n - 1 do
          check_int "raw lookup" i (T.read tx (base + i))
        done);
    T.atomically t (fun tx ->
        for i = 0 to n - 1 do
          check_int "committed" i (T.read tx (base + i))
        done)

  let tests =
    [
      Alcotest.test_case "read/write/commit" `Quick test_read_write_commit;
      Alcotest.test_case "read-your-writes" `Quick test_read_your_writes;
      Alcotest.test_case "writes buffered" `Quick
        test_writes_buffered_until_commit;
      Alcotest.test_case "user exception aborts" `Quick
        test_user_exception_aborts;
      Alcotest.test_case "read-only rejects writes" `Quick
        test_read_only_rejects_writes;
      Alcotest.test_case "alloc abort reclaims" `Quick test_alloc_abort_reclaims;
      Alcotest.test_case "free at commit" `Quick test_free_commit_releases;
      Alcotest.test_case "no lost updates" `Quick test_counter_no_lost_updates;
      Alcotest.test_case "bank conservation" `Quick test_bank_conservation;
      Alcotest.test_case "snapshot consistency" `Quick test_snapshot_consistency;
      Alcotest.test_case "large write set" `Quick test_large_write_set;
    ]
end

module Sim_sem = Semantics (Tstm_runtime.Runtime_sim) ()
module Real_sem = Semantics (Tstm_runtime.Runtime_real) ()

let () =
  Alcotest.run "tstm_tl2"
    [
      ( "bloom",
        [
          Alcotest.test_case "empty" `Quick test_bloom_empty;
          Alcotest.test_case "add/query" `Quick test_bloom_add_query;
          Alcotest.test_case "clear" `Quick test_bloom_clear;
          Alcotest.test_case "selective" `Quick test_bloom_selective;
        ] );
      ( "bloom-props",
        List.map QCheck_alcotest.to_alcotest [ prop_bloom_no_false_negatives ]
      );
      ("semantics (sim)", Sim_sem.tests);
      ("semantics (domains)", Real_sem.tests);
    ]
