(* The service layer: arrival processes, the admission/shedding ladder,
   the overload demo the ISSUE pins (shedding disabled -> SLO blown;
   ladder -> goodput and tail held), cross-process determinism of serve
   plans, and a small record+san stress sweep with the zero-drift drain
   check.

   Also home to the PR's robustness satellites: negative workload-pattern
   parses and the golden watchdog-threshold defaults of `repro storm` and
   `repro serve`. *)

module Service = Tstm_service.Service
module Arrival = Tstm_service.Arrival
module Breaker = Tstm_service.Breaker
module Slo = Tstm_obs.Slo
module W = Tstm_harness.Workload
module Storm = Tstm_harness.Storm
module Scenario = Tstm_harness.Scenario
module Job = Tstm_exec.Job
module Plan = Tstm_exec.Plan

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Arrival processes                                                   *)
(* ------------------------------------------------------------------ *)

let test_arrival_parse_roundtrip () =
  List.iter
    (fun s ->
      match Arrival.of_string s with
      | Error e -> Alcotest.fail (s ^ ": " ^ e)
      | Ok a ->
          check_string ("round-trips " ^ s) s (Arrival.to_string a);
          (match Arrival.of_string (Arrival.to_string a) with
          | Ok a' -> check_bool ("stable " ^ s) true (a = a')
          | Error e -> Alcotest.fail e))
    [
      "poisson:100000";
      "bursty:50000:4:0.001";
      "diurnal:80000:0.002:0.5";
    ];
  (* diurnal amp defaults to 0.8 when omitted. *)
  match Arrival.of_string "diurnal:1000:0.01" with
  | Ok { Arrival.shape = Arrival.Diurnal { amp; _ }; _ } ->
      Alcotest.(check (float 1e-9)) "default amp" 0.8 amp
  | _ -> Alcotest.fail "diurnal without amp rejected"

let test_arrival_parse_negative () =
  List.iter
    (fun s ->
      match Arrival.of_string s with
      | Ok _ -> Alcotest.fail ("accepted " ^ s)
      | Error e -> check_bool ("usage message for " ^ s) true (e <> ""))
    [
      "";
      "poisson";
      "poisson:";
      "poisson:-1";
      "poisson:inf";
      "poisson:nan";
      "bursty:100";
      "bursty:100:0.5:0.01" (* boost must exceed 1 *);
      "bursty:100:4:0" (* period must be positive *);
      "diurnal:100:0.01:1.5" (* amp must stay below 1 *);
      "diurnal:100:0.01:-0.1";
      "weibull:3:4";
    ]

let test_arrival_times () =
  let a = { Arrival.shape = Arrival.Poisson; rate = 50_000.0 } in
  let ts = Arrival.times a ~seed:3 ~horizon:0.01 in
  check_bool "nonempty" true (ts <> []);
  check_bool "deterministic" true (ts = Arrival.times a ~seed:3 ~horizon:0.01);
  check_bool "another seed differs" true
    (ts <> Arrival.times a ~seed:4 ~horizon:0.01);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a <= b && ascending rest
    | _ -> true
  in
  check_bool "ascending" true (ascending ts);
  check_bool "inside the horizon" true
    (List.for_all (fun t -> t >= 0.0 && t < 0.01) ts);
  (* ~500 expected; thinning keeps the count in the right decade. *)
  let n = List.length ts in
  check_bool "plausible count" true (n > 300 && n < 800)

let test_arrival_rates () =
  let base = 1000.0 in
  let bursty =
    { Arrival.shape = Arrival.Bursty { boost = 4.0; period = 0.01 }; rate = base }
  in
  Alcotest.(check (float 1e-6))
    "bursty boosts the window head" (4.0 *. base)
    (Arrival.rate_at bursty ~now:0.001);
  Alcotest.(check (float 1e-6))
    "bursty tail is the base rate" base
    (Arrival.rate_at bursty ~now:0.009);
  Alcotest.(check (float 1e-6))
    "bursty mean counts the duty cycle"
    (base *. (1.0 +. (Arrival.duty *. 3.0)))
    (Arrival.mean_rate bursty);
  let diurnal =
    { Arrival.shape = Arrival.Diurnal { amp = 0.5; period = 0.01 }; rate = base }
  in
  Alcotest.(check (float 1e-6))
    "diurnal mean is the base rate" base (Arrival.mean_rate diurnal);
  Alcotest.(check (float 1e-6))
    "diurnal peak" (1.5 *. base) (Arrival.peak_rate diurnal)

(* ------------------------------------------------------------------ *)
(* Workload-pattern parsing (negative paths)                           *)
(* ------------------------------------------------------------------ *)

let test_pattern_parse_negative () =
  List.iter
    (fun s ->
      match W.pattern_of_string s with
      | Ok _ -> Alcotest.fail ("accepted " ^ s)
      | Error e -> check_bool ("usage message for " ^ s) true (e <> ""))
    [
      "zipf:";
      "zipf:abc";
      "zipf:-1";
      "zipf:0";
      "zipf:inf";
      "zipf:nan";
      "hotspot:-1";
      "hotspot:0";
      "hotspot:";
      "bimodal:-3";
      "rates:0.5";
      "rates:inf";
      "uniform:2";
      "pareto:1.5";
      "";
    ]

let test_pattern_parse_positive () =
  List.iter
    (fun (s, p) ->
      match W.pattern_of_string s with
      | Ok p' -> check_bool ("parses " ^ s) true (p = p')
      | Error e -> Alcotest.fail (s ^ ": " ^ e))
    [
      ("uniform", W.Uniform);
      ("zipf:1.2", W.Zipf 1.2);
      ("hotspot:4", W.Hotspot 4);
      ("bimodal:8", W.Bimodal 8);
      ("rates:2.0", W.Asym 2.0);
    ]

(* ------------------------------------------------------------------ *)
(* Golden watchdog-threshold defaults                                  *)
(* ------------------------------------------------------------------ *)

(* These defaults are CLI surface: `repro storm`/`repro serve` replay
   commands embed them implicitly, so changing one silently changes what
   old repro lines mean.  Pin them. *)
let test_watchdog_defaults () =
  check_int "storm window" 1024 Storm.default.Storm.wd_window;
  check_int "storm retry ceiling" 64 Storm.default.Storm.wd_starve;
  check_int "storm calm windows" 2 Storm.default.Storm.wd_calm;
  check_int "serve window" 50_000 Service.default.Service.wd_window;
  check_int "serve retry ceiling" 64 Service.default.Service.wd_starve;
  check_int "serve calm windows" 2 Service.default.Service.wd_calm

let test_repro_commands_render_thresholds () =
  let storm =
    Storm.repro_command
      { Storm.default with Storm.wd_window = 2048; wd_starve = 32; wd_calm = 3 }
  in
  check_bool "storm window flag" true
    (contains ~sub:"--watchdog-window 2048" storm);
  check_bool "storm ceiling flag" true
    (contains ~sub:"--watchdog-retry-ceiling 32" storm);
  check_bool "storm calm flag" true (contains ~sub:"--watchdog-calm 3" storm);
  check_bool "storm defaults stay implicit" false
    (contains ~sub:"--watchdog-window" (Storm.repro_command Storm.default));
  let serve =
    Service.repro_command
      {
        Service.default with
        Service.watchdog = true;
        wd_window = 9999;
        shed = Service.Serialize_hot;
      }
  in
  check_bool "serve window flag" true
    (contains ~sub:"--watchdog-window 9999" serve);
  check_bool "serve shed flag" true (contains ~sub:"--shed serialize-hot" serve);
  check_bool "serve defaults stay implicit" false
    (contains ~sub:"--watchdog-window"
       (Service.repro_command Service.default))

(* ------------------------------------------------------------------ *)
(* Spec validation and parsing                                         *)
(* ------------------------------------------------------------------ *)

let test_spec_validation () =
  let expect_invalid label spec =
    match Service.run_one spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (label ^ ": accepted")
  in
  let d = Service.default in
  expect_invalid "workers" { d with Service.workers = 0 };
  expect_invalid "shards" { d with Service.shards = 0 };
  expect_invalid "budget" { d with Service.retry_budget = 0 };
  expect_invalid "deadline" { d with Service.deadline = 0.0 };
  expect_invalid "queue cap" { d with Service.queue_cap = 0 };
  expect_invalid "overload" { d with Service.overload = Some (-2.0) };
  expect_invalid "population" { d with Service.initial_size = d.Service.key_range };
  match Service.backend_of_string "btree" with
  | Ok _ -> Alcotest.fail "accepted unknown backend"
  | Error e -> check_bool "backend error message" true (contains ~sub:"btree" e)

(* ------------------------------------------------------------------ *)
(* The overload demo (ISSUE acceptance): fixed seed, 2x capacity        *)
(* ------------------------------------------------------------------ *)

(* The same invariants as test/serve_smoke.ml but on a shorter horizon:
   (a) shedding disabled -> deadline-miss rate and executed-request p99
   blow past the SLO; (b) the full ladder -> goodput >= 80% of calibrated
   capacity and admitted-request tail inside the deadline. *)
let overload_demo stm () =
  let hz = Service.cycles_per_second () in
  let base =
    {
      Service.default with
      Service.stm;
      seed = 7;
      watchdog = true;
      horizon = 0.001;
    }
  in
  let r0 = Service.run_one { base with Service.shed = Service.No_shed } in
  let s0 = r0.Service.slo in
  check_bool "no-shed accounted" true (not (Service.failed r0));
  check_int "no-shed sheds nothing" 0 s0.Slo.shed;
  check_bool "no-shed miss rate blows up" true
    (float_of_int s0.Slo.deadline_missed
    >= 0.3 *. float_of_int (max 1 s0.Slo.admitted));
  check_bool "no-shed p99 past the deadline" true
    (float_of_int s0.Slo.p99_done /. hz >= base.Service.deadline);
  let r1 = Service.run_one { base with Service.shed = Service.Serialize_hot } in
  let s1 = r1.Service.slo in
  check_bool "ladder accounted" true (not (Service.failed r1));
  check_bool "ladder sheds under overload" true (s1.Slo.shed + s1.Slo.dropped > 0);
  check_bool "ladder goodput >= 80% of capacity" true
    (r1.Service.goodput >= 0.8 *. r1.Service.capacity);
  check_bool "ladder keeps the tail inside the deadline" true
    (float_of_int s1.Slo.late
    <= 0.01 *. float_of_int (max 1 (s1.Slo.committed + s1.Slo.late)));
  check_int "no leak either way" 0 (r0.Service.leak_words + r1.Service.leak_words)

(* ------------------------------------------------------------------ *)
(* Cross-process determinism of serve plans                            *)
(* ------------------------------------------------------------------ *)

let fingerprint (res : Plan.result) =
  Digest.to_hex (Digest.string (Marshal.to_string res.Plan.outcomes []))

let test_serve_plan_deterministic () =
  let base =
    { Service.default with Service.horizon = 0.0005; watchdog = true }
  in
  let specs =
    Service.plan ~seeds:2 ~stms:[ "tinystm-wb"; "tl2" ]
      ~sheds:[ Service.No_shed; Service.Serialize_hot ]
      base
  in
  check_int "plan size" 8 (Array.length specs);
  let plan = Array.map (fun s -> Job.Serve_run s) specs in
  let a = Plan.execute ~jobs:1 plan in
  let b = Plan.execute ~jobs:4 plan in
  check_bool "no failures at jobs=1" true (a.Plan.failures = []);
  check_bool "no failures at jobs=4" true (b.Plan.failures = []);
  check_string "byte-identical outcomes across --jobs" (fingerprint a)
    (fingerprint b)

(* ------------------------------------------------------------------ *)
(* Record+san stress sweep with the zero-drift drain check             *)
(* ------------------------------------------------------------------ *)

let test_serve_stress_sweep () =
  let base =
    {
      Service.default with
      Service.horizon = 0.0005;
      record = true;
      san = true;
      watchdog = true;
    }
  in
  let specs =
    Service.plan ~seeds:2 ~stms:Scenario.all_stms
      ~sheds:[ Service.Deadline_aware; Service.Serialize_hot ]
      base
  in
  Array.iter
    (fun spec ->
      let r = Service.run_one spec in
      let label =
        Printf.sprintf "%s/%s/seed=%d" spec.Service.stm
          (Service.shed_to_string spec.Service.shed)
          spec.Service.seed
      in
      check_bool (label ^ ": linearizable") true (r.Service.violations = []);
      check_bool (label ^ ": san-clean") true (r.Service.san_findings = []);
      check_int (label ^ ": zero live-word drift") 0 r.Service.leak_words;
      let s = r.Service.slo in
      check_int
        (label ^ ": admitted = committed + missed + exhausted")
        s.Slo.admitted
        (s.Slo.committed + s.Slo.deadline_missed + s.Slo.budget_exhausted);
      check_int
        (label ^ ": requests = shed + admitted")
        s.Slo.requests
        (s.Slo.shed + s.Slo.admitted))
    specs

(* ------------------------------------------------------------------ *)
(* Vacation backend: multi-tenant consistency + drain                  *)
(* ------------------------------------------------------------------ *)

let test_vacation_backend () =
  let r =
    Service.run_one
      {
        Service.default with
        Service.backend = Service.Vacation;
        horizon = 0.0005;
        san = true;
      }
  in
  check_bool "tenants consistent" true (r.Service.violations = []);
  check_bool "san-clean" true (r.Service.san_findings = []);
  check_int "reservations drain to the populated baseline" 0
    r.Service.leak_words;
  check_bool "it actually served" true (r.Service.slo.Slo.committed > 0)

(* ------------------------------------------------------------------ *)
(* Per-period SLO table                                                *)
(* ------------------------------------------------------------------ *)

let test_per_period_metrics () =
  let r =
    Service.run_one { Service.default with Service.horizon = 0.0005 }
  in
  let m = Service.per_period_metrics ~periods:4 r in
  let csv = Tstm_obs.Metrics.to_csv m in
  check_bool "has the Slo columns" true (contains ~sub:"budget_exhausted" csv);
  (* 4 period rows + header. *)
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "one row per period" 5 (List.length lines);
  (* The completion log covers every request (shed included). *)
  let s = r.Service.slo in
  check_int "the log covers every verdict" s.Slo.requests
    (Array.length r.Service.log)

(* ------------------------------------------------------------------ *)
(* Circuit breaker: calm-window state machine at exact boundaries      *)
(* ------------------------------------------------------------------ *)

let bcfg =
  { Breaker.fault_threshold = 3; window_s = 1.0; cooldown_s = 0.5; calm = 2 }

let check_state = Alcotest.check (Alcotest.testable
    (Fmt.of_to_string Breaker.state_to_string) ( = ))

let test_breaker_trips_at_threshold () =
  let b = Breaker.create bcfg in
  Breaker.on_fault b ~now:0.0;
  Breaker.on_fault b ~now:0.1;
  check_state "two faults stay closed" Breaker.Closed (Breaker.state b);
  check_bool "closed admits" true (Breaker.admit b ~now:0.2);
  Breaker.on_fault b ~now:0.2;
  check_state "third fault trips" Breaker.Open (Breaker.state b);
  check_int "trip counted" 1 (Breaker.trips b);
  check_bool "open rejects" false (Breaker.admit b ~now:0.3)

let test_breaker_cooldown_boundary () =
  let b = Breaker.create bcfg in
  List.iter (fun now -> Breaker.on_fault b ~now) [ 0.0; 0.0; 0.0 ];
  check_state "tripped" Breaker.Open (Breaker.state b);
  check_bool "just before cooldown" false (Breaker.admit b ~now:0.499);
  check_state "still open" Breaker.Open (Breaker.state b);
  check_bool "at cooldown probes" true (Breaker.admit b ~now:0.5);
  check_state "half-open" Breaker.Half_open (Breaker.state b)

let test_breaker_fault_while_probing_retrips () =
  let b = Breaker.create bcfg in
  List.iter (fun now -> Breaker.on_fault b ~now) [ 0.0; 0.0; 0.0 ];
  ignore (Breaker.admit b ~now:0.6);
  check_state "probing" Breaker.Half_open (Breaker.state b);
  Breaker.on_success b ~now:0.61;
  Breaker.on_fault b ~now:0.62;
  check_state "probe fault re-opens" Breaker.Open (Breaker.state b);
  check_int "re-open is a trip" 2 (Breaker.trips b);
  (* The cooldown restarted at the re-trip instant, not the first one. *)
  check_bool "fresh cooldown" false (Breaker.admit b ~now:1.0);
  check_bool "fresh cooldown elapses" true (Breaker.admit b ~now:1.12)

let test_breaker_calm_window_closes () =
  let b = Breaker.create bcfg in
  List.iter (fun now -> Breaker.on_fault b ~now) [ 0.0; 0.0; 0.0 ];
  ignore (Breaker.admit b ~now:0.6);
  Breaker.on_success b ~now:0.7;
  check_state "calm - 1 stays half-open" Breaker.Half_open (Breaker.state b);
  Breaker.on_success b ~now:0.8;
  check_state "calm-th success closes" Breaker.Closed (Breaker.state b);
  (* Closing cleared the fault window: the old burst cannot combine with
     fresh faults to re-trip early. *)
  Breaker.on_fault b ~now:0.9;
  Breaker.on_fault b ~now:0.91;
  check_state "window cleared on close" Breaker.Closed (Breaker.state b);
  Breaker.on_fault b ~now:0.92;
  check_state "fresh burst re-trips" Breaker.Open (Breaker.state b)

let test_breaker_window_prunes_stale_faults () =
  let b = Breaker.create bcfg in
  Breaker.on_fault b ~now:0.0;
  Breaker.on_fault b ~now:0.1;
  (* 1.5 is past 0.0 + window and 0.1 + window: both prune; this third
     fault stands alone and must not trip. *)
  Breaker.on_fault b ~now:1.5;
  check_state "stale faults pruned" Breaker.Closed (Breaker.state b);
  Breaker.on_fault b ~now:1.6;
  Breaker.on_fault b ~now:1.7;
  check_state "in-window burst trips" Breaker.Open (Breaker.state b)

let test_breaker_create_validates () =
  List.iter
    (fun cfg ->
      match Breaker.create cfg with
      | (_ : Breaker.t) -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument _ -> ())
    [
      { bcfg with Breaker.fault_threshold = 0 };
      { bcfg with Breaker.window_s = 0.0 };
      { bcfg with Breaker.cooldown_s = 0.0 };
      { bcfg with Breaker.calm = 0 };
    ]

let test_breaker_transition_callback () =
  let seen = ref [] in
  let b = Breaker.create ~on_transition:(fun st -> seen := st :: !seen) bcfg in
  List.iter (fun now -> Breaker.on_fault b ~now) [ 0.0; 0.0; 0.0 ];
  ignore (Breaker.admit b ~now:0.6);
  Breaker.on_success b ~now:0.7;
  Breaker.on_success b ~now:0.8;
  Alcotest.(check (list string))
    "transition order" [ "open"; "half-open"; "closed" ]
    (List.rev_map Breaker.state_to_string !seen)

let () =
  Alcotest.run "service"
    [
      ( "arrival",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_arrival_parse_roundtrip;
          Alcotest.test_case "parse negative" `Quick test_arrival_parse_negative;
          Alcotest.test_case "times" `Quick test_arrival_times;
          Alcotest.test_case "rates" `Quick test_arrival_rates;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "pattern negative" `Quick test_pattern_parse_negative;
          Alcotest.test_case "pattern positive" `Quick test_pattern_parse_positive;
          Alcotest.test_case "watchdog defaults" `Quick test_watchdog_defaults;
          Alcotest.test_case "repro thresholds" `Quick
            test_repro_commands_render_thresholds;
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "trips at threshold" `Quick
            test_breaker_trips_at_threshold;
          Alcotest.test_case "cooldown boundary" `Quick
            test_breaker_cooldown_boundary;
          Alcotest.test_case "probe fault re-trips" `Quick
            test_breaker_fault_while_probing_retrips;
          Alcotest.test_case "calm window closes" `Quick
            test_breaker_calm_window_closes;
          Alcotest.test_case "window prunes" `Quick
            test_breaker_window_prunes_stale_faults;
          Alcotest.test_case "create validates" `Quick
            test_breaker_create_validates;
          Alcotest.test_case "transition callback" `Quick
            test_breaker_transition_callback;
        ] );
      ( "overload",
        List.map
          (fun stm -> Alcotest.test_case stm `Slow (overload_demo stm))
          Scenario.all_stms );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 4" `Slow test_serve_plan_deterministic;
        ] );
      ( "stress",
        [
          Alcotest.test_case "record+san sweep" `Slow test_serve_stress_sweep;
          Alcotest.test_case "vacation backend" `Slow test_vacation_backend;
          Alcotest.test_case "per-period metrics" `Quick test_per_period_metrics;
        ] );
    ]
