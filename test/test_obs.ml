(* Tests for the observability subsystem (Tstm_obs): ring buffers,
   histograms, contention attribution, exporters, and the guarantee that a
   Null sink leaves simulated runs bit-identical. *)

module Obs = Tstm_obs
module W = Tstm_harness.Workload
module S = Tstm_harness.Scenario

let ev = Obs.Event.Tx_begin
let stamp ts cpu = { Obs.Ring.ts; cpu; ev }

(* ------------------------------------------------------------------ *)
(* Ring                                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_growth () =
  let r = Obs.Ring.create ~capacity:1024 () in
  for i = 0 to 499 do
    Obs.Ring.push r (stamp i 0)
  done;
  Alcotest.(check int) "length" 500 (Obs.Ring.length r);
  Alcotest.(check int) "nothing dropped" 0 (Obs.Ring.dropped r);
  let ts = List.map (fun s -> s.Obs.Ring.ts) (Obs.Ring.to_list r) in
  Alcotest.(check (list int)) "oldest-first order" (List.init 500 Fun.id) ts

let test_ring_wraparound () =
  let r = Obs.Ring.create ~capacity:8 () in
  for i = 0 to 19 do
    Obs.Ring.push r (stamp i 1)
  done;
  Alcotest.(check int) "length capped" 8 (Obs.Ring.length r);
  Alcotest.(check int) "capacity" 8 (Obs.Ring.capacity r);
  Alcotest.(check int) "dropped" 12 (Obs.Ring.dropped r);
  let ts = List.map (fun s -> s.Obs.Ring.ts) (Obs.Ring.to_list r) in
  Alcotest.(check (list int))
    "keeps the newest, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    ts;
  Obs.Ring.clear r;
  Alcotest.(check int) "clear empties" 0 (Obs.Ring.length r);
  Alcotest.(check int) "clear resets dropped" 0 (Obs.Ring.dropped r)

(* ------------------------------------------------------------------ *)
(* Histo                                                               *)
(* ------------------------------------------------------------------ *)

let test_histo_buckets () =
  let b = Obs.Histo.bucket_of in
  Alcotest.(check int) "0 -> bucket 0" 0 (b 0);
  Alcotest.(check int) "negative clamps to bucket 0" 0 (b (-5));
  Alcotest.(check int) "1 -> bucket 1" 1 (b 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (b 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (b 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (b 4);
  Alcotest.(check int) "7 -> bucket 3" 3 (b 7);
  Alcotest.(check int) "8 -> bucket 4" 4 (b 8);
  Alcotest.(check int) "1024 -> bucket 11" 11 (b 1024);
  for k = 1 to 20 do
    Alcotest.(check int)
      (Printf.sprintf "lower_bound %d is in bucket %d" k k)
      k
      (b (Obs.Histo.lower_bound k));
    Alcotest.(check int)
      (Printf.sprintf "upper_bound %d is in bucket %d" k k)
      k
      (b (Obs.Histo.upper_bound k))
  done

let test_histo_stats () =
  let h = Obs.Histo.create () in
  List.iter (Obs.Histo.record h) [ 0; 1; 2; 3; 100; 1000 ];
  Alcotest.(check int) "count" 6 (Obs.Histo.count h);
  Alcotest.(check int) "sum is exact" 1106 (Obs.Histo.sum h);
  Alcotest.(check int) "max" 1000 (Obs.Histo.max_value h);
  Alcotest.(check int) "bucket 2 holds {2,3}" 2 (Obs.Histo.bucket_count h 2);
  (* p50 of 6 samples: cumulative 3/6 reached at bucket 2 -> upper bound 3 *)
  Alcotest.(check int) "p50" 3 (Obs.Histo.percentile h 50.0);
  (* p100 is capped by the true maximum, not the bucket upper bound *)
  Alcotest.(check int) "p100 capped at max" 1000 (Obs.Histo.percentile h 100.0);
  let snap = Obs.Histo.copy h in
  List.iter (Obs.Histo.record h) [ 7; 7; 7 ];
  let d = Obs.Histo.diff h ~since:snap in
  Alcotest.(check int) "diff count" 3 (Obs.Histo.count d);
  Alcotest.(check int) "diff sum" 21 (Obs.Histo.sum d);
  Alcotest.(check int) "diff bucket" 3 (Obs.Histo.bucket_count d 3)

(* ------------------------------------------------------------------ *)
(* Contend                                                             *)
(* ------------------------------------------------------------------ *)

let test_contend () =
  let c = Obs.Contend.create () in
  for _ = 1 to 5 do
    Obs.Contend.record c ~label:"locks" ~line:3 ~same_word:true
  done;
  for _ = 1 to 2 do
    Obs.Contend.record c ~label:"locks" ~line:3 ~same_word:false
  done;
  Obs.Contend.record c ~label:"mem" ~line:0 ~same_word:false;
  Alcotest.(check int) "total" 8 (Obs.Contend.total_transfers c);
  match Obs.Contend.entries c with
  | [ e1; e2 ] ->
      Alcotest.(check string) "hottest label" "locks" e1.Obs.Contend.label;
      Alcotest.(check int) "hottest transfers" 7 e1.Obs.Contend.transfers;
      Alcotest.(check int) "true conflicts" 5 e1.Obs.Contend.true_conflicts;
      Alcotest.(check int) "false sharing" 2 e1.Obs.Contend.false_sharing;
      Alcotest.(check string) "second label" "mem" e2.Obs.Contend.label
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Observed runs: determinism, JSON validity, Null-sink neutrality     *)
(* ------------------------------------------------------------------ *)

let spec =
  W.make ~structure:W.List ~initial_size:64 ~update_pct:20.0 ~nthreads:4
    ~duration:0.002 ~seed:7 ()

let observed () =
  S.run_intset_observed ~stm:"tinystm-wb" ~period:0.0005 ~n_periods:4 spec

let test_trace_deterministic () =
  let _, c1, m1 = observed () in
  let _, c2, m2 = observed () in
  Alcotest.(check string)
    "same seed, byte-identical traces"
    (Obs.Export.chrome_trace c1)
    (Obs.Export.chrome_trace c2);
  Alcotest.(check string)
    "same seed, byte-identical metrics CSV"
    (Obs.Metrics.to_csv m1) (Obs.Metrics.to_csv m2);
  Alcotest.(check string)
    "same seed, byte-identical contention report"
    (Obs.Export.top_contended ~n:5 c1)
    (Obs.Export.top_contended ~n:5 c2)

let test_trace_json_valid () =
  let _, c, m = observed () in
  let json = Obs.Export.chrome_trace c in
  Alcotest.(check bool) "trace is valid JSON" true (Obs.Export.json_is_valid json);
  (* The trace actually recorded transactions on several CPU tracks. *)
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has tx slices" true (contains "\"name\":\"tx\"" json);
  Alcotest.(check bool)
    "has per-CPU track metadata" true
    (contains "thread_name" json);
  let csv = Obs.Metrics.to_csv m in
  Alcotest.(check int)
    "one CSV row per period (plus header)" 5
    (List.length
       (String.split_on_char '\n' (String.trim csv)));
  Alcotest.(check bool)
    "CSV has the latency columns" true
    (contains "p99_commit_cycles" csv)

let test_json_validator_rejects () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %S" s)
        false (Obs.Export.json_is_valid s))
    [ "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "{\"a\":1}extra"; "" ]

let test_null_sink_neutral () =
  (* The whole point of the enabled() guard: a collecting run must report
     exactly the same simulated results as an untraced one. *)
  let run () = S.run_intset ~stm:"tinystm-wb" spec in
  let r_null = run () in
  let collector = Obs.Sink.collector () in
  let r_obs =
    Obs.Sink.with_sink (Obs.Sink.Collect collector) (fun () -> run ())
  in
  Alcotest.(check int) "commits identical" r_null.W.commits r_obs.W.commits;
  Alcotest.(check int) "aborts identical" r_null.W.aborts r_obs.W.aborts;
  Alcotest.(check (float 0.0))
    "throughput identical" r_null.W.throughput r_obs.W.throughput;
  Alcotest.(check bool)
    "the collecting run did record events" true
    (Array.exists (fun r -> Obs.Ring.length r > 0) collector.Obs.Sink.rings);
  Alcotest.(check bool)
    "sink restored to Null" true
    (Obs.Sink.current () = Obs.Sink.Null)

let test_tl2_observed () =
  let _, c, m =
    S.run_intset_observed ~stm:"tl2" ~period:0.0005 ~n_periods:2 spec
  in
  Alcotest.(check bool)
    "TL2 trace valid JSON" true
    (Obs.Export.json_is_valid (Obs.Export.chrome_trace c));
  Alcotest.(check bool)
    "TL2 recorded commits" true
    (Obs.Histo.count c.Obs.Sink.commit_latency > 0);
  Alcotest.(check int) "TL2 metrics rows" 2 (Obs.Metrics.n_rows m)

let () =
  Alcotest.run "tstm_obs"
    [
      ( "ring",
        [
          Alcotest.test_case "growth keeps order" `Quick test_ring_growth;
          Alcotest.test_case "wrap-around" `Quick test_ring_wraparound;
        ] );
      ( "histo",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_histo_buckets;
          Alcotest.test_case "stats and diff" `Quick test_histo_stats;
        ] );
      ("contend", [ Alcotest.test_case "attribution" `Quick test_contend ]);
      ( "export",
        [
          Alcotest.test_case "deterministic traces" `Quick
            test_trace_deterministic;
          Alcotest.test_case "trace JSON + CSV shape" `Quick
            test_trace_json_valid;
          Alcotest.test_case "validator rejects junk" `Quick
            test_json_validator_rejects;
        ] );
      ( "sink",
        [
          Alcotest.test_case "Null sink neutrality" `Quick
            test_null_sink_neutral;
          Alcotest.test_case "TL2 observed run" `Quick test_tl2_observed;
        ] );
    ]
