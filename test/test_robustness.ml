(* Robustness and edge-case tests: failure injection around the write
   barriers, write-through incarnation overflow, read-only staleness aborts,
   API misuse errors, tuner corner rules, overwrite workloads. *)

module R = Tstm_runtime.Runtime_sim
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module Config = Tinystm.Config
module Lockenc = Tinystm.Lockenc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom

let make ?(strategy = Config.Write_back) ?(n_locks = 256) ?max_clock () =
  Ts.create ~config:(Config.make ~n_locks ~strategy ()) ?max_clock
    ~memory_words:4096 ()

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

(* The abort-path tests only need the common [Tm_intf.TM] operations plus a
   way to build an instance and inspect the arena, so they are written once
   as a functor and instantiated for TinySTM (both write strategies) and
   TL2. *)
module type INSTANCE = sig
  module T : Tstm_tm.Tm_intf.TM

  val make : unit -> T.t
  val live_words : T.t -> int
end

module Failure_injection (I : INSTANCE) = struct
  module T = I.T

  (* Abort after each prefix of a multi-write transaction: memory must
     always revert to the pre-transaction image. *)
  let test_abort_after_every_prefix () =
    let t = I.make () in
    let a = T.atomically t (fun tx -> T.alloc tx 8) in
    T.atomically t (fun tx ->
        for i = 0 to 7 do
          T.write tx (a + i) (100 + i)
        done);
    for prefix = 1 to 8 do
      (try
         T.atomically t (fun tx ->
             for i = 0 to prefix - 1 do
               T.write tx (a + i) (-1)
             done;
             raise Boom)
       with Boom -> ());
      for i = 0 to 7 do
        check_int
          (Printf.sprintf "prefix %d word %d restored" prefix i)
          (100 + i)
          (T.atomically t (fun tx -> T.read tx (a + i)))
      done
    done

  (* Repeated writes to the same word inside an aborting transaction: the
     rollback (undo log or discarded write set) must restore the *original*
     value, not an intermediate one. *)
  let test_abort_restores_oldest () =
    let t = I.make () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    T.atomically t (fun tx -> T.write tx a 7);
    (try
       T.atomically t (fun tx ->
           T.write tx a 1;
           T.write tx a 2;
           T.write tx a 3;
           raise Boom)
     with Boom -> ());
    check_int "original restored" 7 (T.atomically t (fun tx -> T.read tx a))

  (* Writes to words freshly allocated by the aborting transaction must not
     leak: the block is reclaimed and reusable. *)
  let test_abort_with_writes_to_fresh_alloc () =
    let t = I.make () in
    let live_before = I.live_words t in
    (try
       T.atomically t (fun tx ->
           let b = T.alloc tx 4 in
           for i = 0 to 3 do
             T.write tx (b + i) 999
           done;
           raise Boom)
     with Boom -> ());
    check_int "no leak" live_before (I.live_words t)

  (* Genuine arena exhaustion mid-transaction: the allocation-failed abort
     retries in place, escalates to the typed [Capacity] verdict once the
     bounded retry budget runs out, and leaks nothing — [live_words] stays
     exactly where the last successful transaction left it. *)
  let test_arena_exhaustion_leaks_nothing () =
    let t = I.make () in
    let last_live = ref (I.live_words t) in
    let rec fill n =
      if n > 1000 then Alcotest.fail "arena never filled"
      else
        match T.atomically t (fun tx -> ignore (T.alloc tx 96)) with
        | () ->
            last_live := I.live_words t;
            fill (n + 1)
        | exception Tstm_tm.Tm_intf.Capacity { retries; _ } ->
            check_bool "escalated after the bounded retry budget" true
              (retries >= 16);
            check_int "no leak at exhaustion" !last_live (I.live_words t)
    in
    fill 0

  let tests tag =
    [
      Alcotest.test_case (tag ^ ": abort after every prefix") `Quick
        test_abort_after_every_prefix;
      Alcotest.test_case (tag ^ ": abort restores oldest") `Quick
        test_abort_restores_oldest;
      Alcotest.test_case (tag ^ ": abort with fresh alloc") `Quick
        test_abort_with_writes_to_fresh_alloc;
      Alcotest.test_case (tag ^ ": arena exhaustion leaks nothing") `Quick
        test_arena_exhaustion_leaks_nothing;
    ]
end

module Inject_wb = Failure_injection (struct
  module T = Ts

  let make () = make ~strategy:Config.Write_back ()
  let live_words t = Ts.V.live_words (Ts.memory t)
end)

module Inject_wt = Failure_injection (struct
  module T = Ts

  let make () = make ~strategy:Config.Write_through ()
  let live_words t = Ts.V.live_words (Ts.memory t)
end)

module Inject_tl2 = Failure_injection (struct
  module T = Tl

  let make () = Tl.create ~n_locks:256 ~memory_words:4096 ()
  let live_words t = Tl.V.live_words (Tl.memory t)
end)

module No = Tstm_norec.Norec.Make (R)

module Inject_norec = Failure_injection (struct
  module T = No

  let make () = No.create ~memory_words:4096 ()
  let live_words t = No.V.live_words (No.memory t)
end)

(* ------------------------------------------------------------------ *)
(* Write-through incarnation overflow                                  *)
(* ------------------------------------------------------------------ *)

let test_incarnation_overflow () =
  (* More aborting writers on one lock than the 3-bit incarnation space:
     the implementation must take a fresh version from the clock and stay
     consistent. *)
  let t = make ~strategy:Config.Write_through () in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 55);
  for _ = 1 to 3 * (Lockenc.max_incarnation + 1) do
    try
      Ts.atomically t (fun tx ->
          Ts.write tx a 0;
          raise Boom)
    with Boom -> ()
  done;
  check_int "value survives incarnation wrap" 55
    (Ts.atomically t (fun tx -> Ts.read tx a));
  (* The instance still commits fine afterwards. *)
  Ts.atomically t (fun tx -> Ts.write tx a 56);
  check_int "post-wrap commit" 56 (Ts.atomically t (fun tx -> Ts.read tx a))

(* ------------------------------------------------------------------ *)
(* Read-only staleness                                                 *)
(* ------------------------------------------------------------------ *)

let test_read_only_aborts_on_stale () =
  (* A read-only transaction cannot extend its snapshot: arrange a writer
     commit between its two reads and check it still returns a consistent
     pair (after internal retry), with at least one recorded abort. *)
  let t = make () in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 2) in
  Ts.atomically t (fun tx ->
      Ts.write tx a 1;
      Ts.write tx (a + 1) 1);
  Ts.reset_stats t;
  let seen = ref (0, 0) in
  R.run ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        (* Writer: commit a coherent bump while the reader sleeps. *)
        R.charge 3_000;
        Ts.atomically t (fun tx ->
            Ts.write tx a 2;
            Ts.write tx (a + 1) 2)
      end
      else
        seen :=
          Ts.atomically ~read_only:true t (fun tx ->
              let x = Ts.read tx a in
              R.charge 20_000 (* give the writer time to land in between *);
              let y = Ts.read tx (a + 1) in
              (x, y)))
  ;
  let x, y = !seen in
  check_bool "consistent pair" true (x = y);
  check_int "reader saw the new snapshot after retry" 2 x;
  let s = Ts.stats t in
  check_bool "one read-only abort recorded" true
    (s.Tstm_tm.Tm_stats.aborts_validation >= 1)

(* ------------------------------------------------------------------ *)
(* API misuse and limits                                               *)
(* ------------------------------------------------------------------ *)

let test_create_validations () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "max_threads 0" true
    (bad (fun () -> Ts.create ~max_threads:0 ~memory_words:64 ()));
  check_bool "max_threads beyond tid space" true
    (bad (fun () -> Ts.create ~max_threads:500 ~memory_words:64 ()));
  check_bool "absurd max_clock" true
    (bad (fun () -> Ts.create ~max_clock:2 ~memory_words:64 ()));
  check_bool "tl2 bad locks" true
    (bad (fun () -> Tl.create ~n_locks:1000 ~memory_words:64 ()))

let test_set_config_validates () =
  let t = make () in
  (try
     Ts.set_config t
       { Config.n_locks = 4; shifts = 0; hierarchy = 8; hierarchy2 = 1; strategy = Config.Write_back };
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (* Instance unharmed. *)
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 5);
  check_int "still functional" 5 (Ts.atomically t (fun tx -> Ts.read tx a))

let test_nested_atomically_rejected () =
  let t = make () in
  try
    Ts.atomically t (fun _ -> Ts.atomically t (fun _ -> ()));
    Alcotest.fail "nested transaction must be rejected"
  with Invalid_argument _ -> ()

let test_strategy_switch_via_set_config () =
  (* Re-tuning may also flip the write strategy; data survives. *)
  let t = make ~strategy:Config.Write_back () in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 11);
  Ts.set_config t (Config.make ~n_locks:512 ~strategy:Config.Write_through ());
  check_int "data kept across strategy switch" 11
    (Ts.atomically t (fun tx -> Ts.read tx a));
  (try
     Ts.atomically t (fun tx ->
         Ts.write tx a 12;
         raise Boom)
   with Boom -> ());
  check_int "write-through undo works after switch" 11
    (Ts.atomically t (fun tx -> Ts.read tx a))

(* ------------------------------------------------------------------ *)
(* Bounded conflict waiting (paper §3.1 alternative policy)            *)
(* ------------------------------------------------------------------ *)

let hot_counter_run ~conflict_wait =
  let t =
    Ts.create
      ~config:(Config.make ~n_locks:64 ())
      ~conflict_wait ~memory_words:256 ()
  in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 0);
  Ts.reset_stats t;
  R.run ~nthreads:8 (fun _ ->
      for _ = 1 to 100 do
        Ts.atomically t (fun tx -> Ts.write tx a (Ts.read tx a + 1))
      done);
  let s = Ts.stats t in
  let v = Ts.atomically t (fun tx -> Ts.read tx a) in
  (v, Tstm_tm.Tm_stats.aborts s)

let test_conflict_wait_correct_and_calmer () =
  let v0, aborts0 = hot_counter_run ~conflict_wait:0 in
  let v1, aborts1 = hot_counter_run ~conflict_wait:16 in
  check_int "exact count without waiting" 800 v0;
  check_int "exact count with waiting" 800 v1;
  check_bool
    (Printf.sprintf "waiting reduces aborts (%d -> %d)" aborts0 aborts1)
    true (aborts1 < aborts0)

let test_conflict_wait_validated () =
  try
    ignore (Ts.create ~conflict_wait:(-1) ~memory_words:64 ());
    Alcotest.fail "negative conflict_wait accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Lockenc boundaries                                                  *)
(* ------------------------------------------------------------------ *)

let test_lockenc_maxima () =
  let w =
    Lockenc.unlocked ~version:Lockenc.max_version
      ~incarnation:Lockenc.max_incarnation
  in
  check_int "max version roundtrip" Lockenc.max_version (Lockenc.version w);
  check_int "max incarnation roundtrip" Lockenc.max_incarnation
    (Lockenc.incarnation w);
  let l = Lockenc.locked ~tid:Lockenc.max_tid ~payload:0 in
  check_int "max tid roundtrip" Lockenc.max_tid (Lockenc.owner l);
  check_bool "distinct" true (w <> l)

(* ------------------------------------------------------------------ *)
(* Tuner corner rules                                                  *)
(* ------------------------------------------------------------------ *)

module Tuner = Tstm_tuning.Tuner

let test_tuner_second_best_switch () =
  (* Explore a 1-D landscape until the best is saturated, then degrade the
     best configuration's throughput below the second best: the tuner must
     switch to the second best. *)
  let t = Tuner.create ~seed:2 (Config.make ~n_locks:16 ~shifts:0 ~hierarchy:1 ()) in
  (* Synthetic: locks=16 scores 100, every other config scores 90 the first
     time.  After convergence we feed the best config 50. *)
  let fed = ref 0 in
  let decide () =
    let cfg = Tuner.current t in
    let base = if cfg.Config.n_locks = 16 then 100.0 else 90.0 in
    let v = if !fed > 120 && cfg.Config.n_locks = 16 then 50.0 else base in
    incr fed;
    Tuner.record t v
  in
  for _ = 1 to 400 do
    ignore (decide ())
  done;
  (* 400 measurements are far past the degradation point: the tuner has seen
     the best config score 50 and must have moved off it for good. *)
  check_bool "saw the degradation phase" true (!fed > 120);
  check_bool "left the degraded n_locks=16" true
    ((Tuner.current t).Config.n_locks <> 16)

let test_tuner_nop_at_converged_best () =
  (* Single legal configuration: every neighbour forbidden by bounds is not
     constructible here, so emulate with a flat landscape and check the tuner
     eventually revisits (nop) its best rather than crashing. *)
  let t = Tuner.create ~seed:4 (Config.make ~n_locks:16 ~shifts:0 ~hierarchy:1 ()) in
  for _ = 1 to 300 do
    ignore (Tuner.record t 100.0)
  done;
  Config.validate (Tuner.current t);
  check_bool "still exploring or parked" true (Tuner.explored t >= 1)

(* ------------------------------------------------------------------ *)
(* Overwrite workloads                                                 *)
(* ------------------------------------------------------------------ *)

module D = Tstm_harness.Driver.Make (R) (Ts)
module W = Tstm_harness.Workload

let test_overwrite_workload_writes_heavily () =
  let spec =
    W.make ~structure:W.List ~initial_size:128 ~update_pct:0.0
      ~overwrite_pct:100.0 ~nthreads:2 ~duration:0.001 ()
  in
  let t = Ts.create ~config:(Config.make ~n_locks:1024 ())
      ~memory_words:(W.memory_words_for spec) () in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let r, _ = D.run t ops spec in
  check_bool "commits" true (r.W.commits > 0);
  let writes_per_tx =
    float_of_int r.W.stats.Tstm_tm.Tm_stats.writes /. float_of_int r.W.commits
  in
  check_bool
    (Printf.sprintf "large write sets (%.1f writes/tx)" writes_per_tx)
    true (writes_per_tx > 10.0)

let test_overwrite_preserves_contents () =
  let spec =
    W.make ~structure:W.Rbtree ~initial_size:64 ~update_pct:0.0
      ~overwrite_pct:50.0 ~nthreads:4 ~duration:0.001 ()
  in
  let t = Ts.create ~config:(Config.make ~n_locks:1024 ())
      ~memory_words:(W.memory_words_for spec) () in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let before = Ts.atomically t (fun tx -> ops.D.op_size tx) in
  ignore (D.run t ops spec);
  check_int "overwrites do not change membership" before
    (Ts.atomically t (fun tx -> ops.D.op_size tx))

(* ------------------------------------------------------------------ *)
(* Contention managers: registry and decision tables                   *)
(* ------------------------------------------------------------------ *)

module Cm = Tstm_cm.Cm

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_cm_registry () =
  check_bool "backoff default" true (Cm.default = Cm.Backoff);
  (* Canonical names roundtrip through of_string/to_string. *)
  List.iter
    (fun p ->
      match Cm.of_string (Cm.to_string p) with
      | Ok p' -> check_bool (Cm.to_string p ^ " roundtrips") true (p = p')
      | Error m -> Alcotest.fail m)
    [ Cm.Suicide; Cm.Backoff; Cm.Karma; Cm.Greedy; Cm.Serialize 3 ];
  check_bool "timid alias" true (Cm.of_string "timid" = Ok Cm.Backoff);
  check_bool "serialize default arg" true
    (Cm.of_string "serialize" = Ok (Cm.Serialize 8));
  check_bool "serialize:N parses" true
    (Cm.of_string "serialize:4" = Ok (Cm.Serialize 4));
  check_bool "serialize:0 rejected" true
    (match Cm.of_string "serialize:0" with Error _ -> true | Ok _ -> false);
  (match Cm.of_string "nope" with
  | Error msg ->
      check_bool "unknown error lists names" true
        (List.for_all (fun n -> contains ~sub:n msg) (Cm.names ()))
  | Ok _ -> Alcotest.fail "unknown name accepted");
  check_bool "mem" true (Cm.mem "karma" && not (Cm.mem "nope"));
  List.iter
    (fun n -> check_bool (n ^ " described") true (Cm.describe n <> ""))
    (Cm.names ())

let decide p ~sp ~ep ~st ~et =
  Cm.on_enemy p ~self_prio:sp ~enemy_prio:ep ~self_tid:st ~enemy_tid:et

let test_cm_decision_tables () =
  (* Suicide always aborts self; backoff/serialize always wait-then-abort —
     whatever the priorities say. *)
  List.iter
    (fun (sp, ep, st, et) ->
      check_bool "suicide aborts" true
        (decide Cm.Suicide ~sp ~ep ~st ~et = Cm.Abort_now);
      check_bool "backoff waits" true
        (decide Cm.Backoff ~sp ~ep ~st ~et = Cm.Wait_retry);
      check_bool "serialize waits" true
        (decide (Cm.Serialize 4) ~sp ~ep ~st ~et = Cm.Wait_retry))
    [ (0, 0, 1, 2); (5, 1, 2, 1); (1, 5, 1, 2) ];
  (* Karma: richer kills poorer; ties break toward the lower tid. *)
  check_bool "karma richer kills" true
    (decide Cm.Karma ~sp:10 ~ep:3 ~st:2 ~et:1 = Cm.Kill_enemy);
  check_bool "karma poorer waits" true
    (decide Cm.Karma ~sp:3 ~ep:10 ~st:1 ~et:2 = Cm.Wait_retry);
  check_bool "karma tie, lower tid kills" true
    (decide Cm.Karma ~sp:5 ~ep:5 ~st:1 ~et:2 = Cm.Kill_enemy);
  check_bool "karma tie, higher tid waits" true
    (decide Cm.Karma ~sp:5 ~ep:5 ~st:2 ~et:1 = Cm.Wait_retry);
  (* Greedy: smaller ticket = older = winner; an unpublished enemy ticket
     (0) means the enemy is completing — wait for its lock to go. *)
  check_bool "greedy older kills" true
    (decide Cm.Greedy ~sp:3 ~ep:9 ~st:2 ~et:1 = Cm.Kill_enemy);
  check_bool "greedy younger waits" true
    (decide Cm.Greedy ~sp:9 ~ep:3 ~st:1 ~et:2 = Cm.Wait_retry);
  check_bool "greedy zero enemy ticket waits" true
    (decide Cm.Greedy ~sp:9 ~ep:0 ~st:1 ~et:2 = Cm.Wait_retry);
  check_bool "greedy tie, lower tid kills" true
    (decide Cm.Greedy ~sp:4 ~ep:4 ~st:1 ~et:2 = Cm.Kill_enemy)

(* The conservation property that makes priority policies livelock-free:
   for any symmetric conflict (both sides see the other as enemy), exactly
   one side decides Kill_enemy — never both (mutual kills = livelock),
   never neither (mutual waits = both spin out and abort, re-entering the
   same state).  Holds for karma always, and for greedy whenever both
   tickets are published. *)
let cm_kill_total_order =
  QCheck.Test.make ~count:500 ~name:"karma/greedy kill is a total order"
    QCheck.(quad (int_bound 1000) (int_bound 1000) (int_bound 126) (int_bound 126))
    (fun (pa, pb, ta, tb) ->
      QCheck.assume (ta <> tb);
      let kills p ~sp ~ep ~st ~et =
        decide p ~sp ~ep ~st ~et = Cm.Kill_enemy
      in
      let one_of p spa spb =
        let a = kills p ~sp:spa ~ep:spb ~st:ta ~et:tb in
        let b = kills p ~sp:spb ~ep:spa ~st:tb ~et:ta in
        (a || b) && not (a && b)
      in
      one_of Cm.Karma pa pb && one_of Cm.Greedy (pa + 1) (pb + 1))

let test_effective_max_retries () =
  check_int "serialize with no budget" 4
    (Cm.effective_max_retries (Cm.Serialize 4) 0);
  check_int "serialize tightens budget" 4
    (Cm.effective_max_retries (Cm.Serialize 4) 9);
  check_int "budget tightens serialize" 2
    (Cm.effective_max_retries (Cm.Serialize 4) 2);
  check_int "backoff passes through" 7 (Cm.effective_max_retries Cm.Backoff 7);
  check_int "suicide passes 0 through" 0
    (Cm.effective_max_retries Cm.Suicide 0)

(* ------------------------------------------------------------------ *)
(* Backoff determinism and shift-overflow regression                   *)
(* ------------------------------------------------------------------ *)

let test_backoff_bounded_at_any_attempts () =
  (* Regression: [16 lsl attempts] overflows the OCaml int at attempts >=
     59, which would make the "wait" negative.  The capped formula must
     stay within [base/2, cap] for any attempt count. *)
  let rng = Tstm_util.Xrand.create 7 in
  List.iter
    (fun attempts ->
      let base = min Cm.backoff_cap (16 lsl min attempts 16) in
      for _ = 1 to 50 do
        let c = Cm.backoff_cycles ~rng ~attempts in
        check_bool
          (Printf.sprintf "attempts=%d cycles=%d in range" attempts c)
          true
          (c >= base / 2 && c <= Cm.backoff_cap && c <= base)
      done)
    [ 0; 1; 4; 8; 15; 16; 17; 58; 59; 60; 62; 1000; max_int ]

let test_backoff_replay_stable () =
  (* Same seed, same attempt sequence => byte-identical delays: the jitter
     must come only from the given rng. *)
  let sample seed =
    let rng = Tstm_util.Xrand.create seed in
    List.init 64 (fun i -> Cm.backoff_cycles ~rng ~attempts:(i mod 20))
  in
  check_bool "same seed, same sequence" true (sample 42 = sample 42);
  check_bool "different seed, different sequence" true
    (sample 42 <> sample 43)

(* ------------------------------------------------------------------ *)
(* Fairness counters (Tm_stats)                                        *)
(* ------------------------------------------------------------------ *)

module Stats = Tstm_tm.Tm_stats

let test_fairness_counters () =
  let s = Stats.create () in
  Stats.record_retries s 0;
  Stats.record_retries s 3;
  Stats.record_retries s 70;
  check_int "max retries tracked" 70 s.Stats.max_retries_seen;
  check_int "0 retries -> bucket 0" 1 s.Stats.retry_hist.(0);
  check_int "3 retries -> bucket 2" 1 s.Stats.retry_hist.(2);
  check_int "70 retries -> bucket 7" 1 s.Stats.retry_hist.(7);
  let s2 = Stats.create () in
  Stats.record_retries s2 1_000_000;
  check_bool "huge retries land in the last bucket" true
    (s2.Stats.retry_hist.(Stats.retry_hist_buckets - 1) = 1);
  Stats.add_into ~dst:s2 s;
  check_int "merge keeps max, not sum" 1_000_000 s2.Stats.max_retries_seen;
  check_int "merge sums buckets" 1 s2.Stats.retry_hist.(2);
  s.Stats.cm_switches <- 5;
  Stats.record_abort s Stats.Killed;
  check_int "killed aborts counted" 1 s.Stats.aborts_killed;
  check_int "killed aborts in the total" 1 (Stats.aborts s);
  let rendered = Format.asprintf "%a" Stats.pp s in
  List.iter
    (fun sub ->
      check_bool (sub ^ " surfaced in pp") true (contains ~sub rendered))
    [ "max-retries=70"; "cm-switches=5"; "kill=1"; "retry-hist=" ]

(* ------------------------------------------------------------------ *)
(* Watchdog state machine                                              *)
(* ------------------------------------------------------------------ *)

module Wd = Tstm_runtime.Watchdog

let test_watchdog_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "window < 1" true (bad (fun () -> Wd.create ~window:0 ()));
  check_bool "negative starve_retries" true
    (bad (fun () -> Wd.create ~starve_retries:(-1) ()));
  check_bool "recover_windows < 1" true
    (bad (fun () -> Wd.create ~recover_windows:0 ()))

let test_watchdog_livelock_ladder () =
  let w = Wd.create ~window:100 ~starve_retries:0 ~recover_windows:2 () in
  check_bool "starts normal" true (Wd.level w = Wd.Normal);
  check_bool "quiet inside the window" true
    (Wd.note_abort w ~now:50 ~tid:1 ~retries:3 = []);
  (* First zero-commit window: Normal -> Boosted. *)
  (match Wd.note_abort w ~now:150 ~tid:1 ~retries:4 with
  | [ Wd.Livelock { window = 100 }; Wd.Switch { level = Wd.Boosted } ] -> ()
  | _ -> Alcotest.fail "expected livelock + boost");
  (* Second: Boosted -> Serialized; the ladder then saturates. *)
  (match Wd.note_abort w ~now:300 ~tid:1 ~retries:5 with
  | [ Wd.Livelock _; Wd.Switch { level = Wd.Serialized } ] -> ()
  | _ -> Alcotest.fail "expected livelock + serialize");
  (match Wd.note_abort w ~now:450 ~tid:1 ~retries:6 with
  | [ Wd.Livelock _ ] -> ()
  | _ -> Alcotest.fail "saturated ladder must not switch");
  check_int "livelocks counted" 3 (Wd.livelocks w);
  (* Recovery: two consecutive commit-bearing windows per step back down. *)
  check_bool "commit lands quietly" true (Wd.note_commit w ~now:460 ~tid:2 = []);
  check_bool "first calm window" true (Wd.note_commit w ~now:580 ~tid:2 = []);
  (match Wd.note_commit w ~now:700 ~tid:2 with
  | [ Wd.Switch { level = Wd.Boosted } ] -> ()
  | _ -> Alcotest.fail "expected de-escalation to boosted");
  check_int "heartbeat tracks last commit" 700 (Wd.last_commit w ~tid:2);
  check_int "other cpu untouched" (-1) (Wd.last_commit w ~tid:3);
  check_bool "switch count" true (Wd.switches w = 3)

let test_watchdog_starvation_once () =
  let w = Wd.create ~window:1_000_000 ~starve_retries:8 () in
  (* Fires exactly at the ceiling, not before, not again after. *)
  check_bool "below ceiling quiet" true
    (Wd.note_abort w ~now:10 ~tid:3 ~retries:7 = []);
  (match Wd.note_abort w ~now:20 ~tid:3 ~retries:8 with
  | [ Wd.Starved { tid = 3; retries = 8 }; Wd.Switch { level = Wd.Boosted } ]
    -> ()
  | _ -> Alcotest.fail "expected starvation + boost");
  check_bool "past ceiling quiet" true
    (Wd.note_abort w ~now:30 ~tid:3 ~retries:9 = []);
  check_int "one starvation" 1 (Wd.starvations w)

(* ------------------------------------------------------------------ *)
(* Adversarial workload patterns                                       *)
(* ------------------------------------------------------------------ *)

let test_pattern_names () =
  List.iter
    (fun p ->
      match W.pattern_of_string (W.pattern_to_string p) with
      | Ok p' ->
          check_bool (W.pattern_to_string p ^ " roundtrips") true (p = p')
      | Error m -> Alcotest.fail m)
    [ W.Uniform; W.Zipf 1.2; W.Hotspot 4; W.Bimodal 8; W.Asym 2.0 ];
  check_bool "unknown rejected" true
    (match W.pattern_of_string "nope" with Error _ -> true | Ok _ -> false);
  check_bool "bad zipf rejected" true
    (match W.pattern_of_string "zipf:0" with Error _ -> true | Ok _ -> false)

let test_uniform_stream_identity () =
  (* The Uniform sampler must consume exactly the historical RNG stream:
     one [Xrand.int] per key. *)
  let g1 = Tstm_util.Xrand.create 7 and g2 = Tstm_util.Xrand.create 7 in
  let draw = W.key_gen W.Uniform ~key_range:512 in
  for _ = 1 to 1000 do
    check_int "same stream" (1 + Tstm_util.Xrand.int g2 512) (draw g1)
  done

let test_skewed_patterns_concentrate () =
  let count_hot pattern ~hot =
    let g = Tstm_util.Xrand.create 11 in
    let draw = W.key_gen pattern ~key_range:1024 in
    let n = 10_000 in
    let c = ref 0 in
    for _ = 1 to n do
      let k = draw g in
      check_bool "key in range" true (k >= 1 && k <= 1024);
      if k <= hot then incr c
    done;
    float_of_int !c /. float_of_int n
  in
  let uni = count_hot W.Uniform ~hot:8 in
  let zipf = count_hot (W.Zipf 1.2) ~hot:8 in
  let hots = count_hot (W.Hotspot 8) ~hot:8 in
  check_bool
    (Printf.sprintf "zipf concentrates (%.3f vs uniform %.3f)" zipf uni)
    true
    (zipf > 20.0 *. uni);
  check_bool (Printf.sprintf "hotspot sends ~90%% to the hot set (%.3f)" hots)
    true
    (hots > 0.85 && hots < 0.95)

let test_pattern_roles () =
  check_int "bimodal even tid scans" 16 (W.reader_span (W.Bimodal 16) ~tid:2);
  check_int "bimodal odd tid normal" 0 (W.reader_span (W.Bimodal 16) ~tid:3);
  check_int "asym odd tid idles" 500 (W.idle_cycles (W.Asym 2.0) ~tid:1);
  check_int "asym even tid full speed" 0 (W.idle_cycles (W.Asym 2.0) ~tid:2);
  check_int "uniform no roles" 0
    (W.reader_span W.Uniform ~tid:0 + W.idle_cycles W.Uniform ~tid:1)

(* ------------------------------------------------------------------ *)
(* Progress guarantees on the storm workload                           *)
(* ------------------------------------------------------------------ *)

module Storm = Tstm_harness.Storm

let storm stm cm ~watchdog = Storm.run_one { Storm.default with stm; cm; watchdog }

module Registry = Tstm_tm.Registry

(* The batteries enumerate the registry rather than naming STMs, so a new
   registration is tested automatically.  The suicide-livelock pair holds
   only for lock-array STMs: symmetric hold-and-wait needs at least two
   locks, so it is gated on [capabilities.lock_array] — a single global
   sequence lock admits no such cycle (the CAS winner always commits), and
   that obstruction-freedom is asserted separately below. *)
let all_stms = Tstm_harness.Scenario.all_stms

let lock_array_stms =
  List.map
    (fun e -> e.Registry.name)
    (Registry.filter (fun e ->
         e.Registry.capabilities.Tstm_tm.Tm_intf.lock_array))

let seqlock_stms =
  List.map
    (fun e -> e.Registry.name)
    (Registry.filter (fun e ->
         not e.Registry.capabilities.Tstm_tm.Tm_intf.lock_array))

let test_suicide_livelocks () =
  (* Unmanaged symmetric conflicts: the pairs shadow-box until the deadline
     and nobody reaches the quota, on every lock-array STM. *)
  check_bool "battery covers at least the seed STMs" true
    (List.length lock_array_stms >= 3);
  List.iter
    (fun stm ->
      let r = storm stm "suicide" ~watchdog:false in
      check_bool (stm ^ " livelocked") true (not r.Storm.completed);
      check_int (stm ^ " zero commits") 0
        (Array.fold_left ( + ) 0 r.Storm.commits))
    lock_array_stms

let test_watchdog_rescues_suicide () =
  List.iter
    (fun stm ->
      let r = storm stm "suicide" ~watchdog:true in
      check_bool (stm ^ " completed under watchdog") true r.Storm.completed;
      check_bool (stm ^ " livelock detected") true (r.Storm.livelocks >= 1);
      check_bool (stm ^ " degradation engaged") true (r.Storm.switches >= 1);
      check_bool (stm ^ " escalations commit the storm") true
        (r.Storm.escalations >= 1))
    lock_array_stms

let test_seqlock_obstruction_free () =
  (* The flip side of the gate above: the same unmanaged suicide storm that
     livelocks every lock-array STM completes at full quota on a
     single-seqlock STM, with no watchdog and no serial escalation. *)
  check_bool "a seqlock STM is registered" true (seqlock_stms <> []);
  List.iter
    (fun stm ->
      let r = storm stm "suicide" ~watchdog:false in
      check_bool (stm ^ " suicide storm completed") true r.Storm.completed;
      Array.iteri
        (fun tid c ->
          check_int
            (Printf.sprintf "%s thread %d met quota" stm tid)
            Storm.default.Storm.quota c)
        r.Storm.commits;
      check_int (stm ^ " no escalations needed") 0 r.Storm.escalations;
      check_int (stm ^ " no livelock windows") 0 r.Storm.livelocks)
    seqlock_stms

let test_priority_cms_commit_everything () =
  List.iter
    (fun stm ->
      List.iter
        (fun cm ->
          let r = storm stm cm ~watchdog:false in
          check_bool
            (Printf.sprintf "%s under %s completed" stm cm)
            true r.Storm.completed;
          Array.iteri
            (fun tid c ->
              check_int
                (Printf.sprintf "%s/%s thread %d met quota" stm cm tid)
                Storm.default.Storm.quota c)
            r.Storm.commits;
          check_int
            (Printf.sprintf "%s/%s no serial escalations needed" stm cm)
            0 r.Storm.escalations)
        [ "karma"; "greedy" ])
    all_stms

let test_serialize_commits_via_escalation () =
  List.iter
    (fun stm ->
      let r = storm stm "serialize:4" ~watchdog:false in
      check_bool (stm ^ " serialize completed") true r.Storm.completed;
      check_bool (stm ^ " serialize escalated") true (r.Storm.escalations >= 1))
    all_stms

let () =
  Alcotest.run "robustness"
    [
      ( "failure injection",
        Inject_wb.tests (Config.strategy_to_string Config.Write_back)
        @ Inject_wt.tests (Config.strategy_to_string Config.Write_through)
        @ Inject_tl2.tests "tl2" @ Inject_norec.tests "norec" );
      ( "write-through incarnations",
        [ Alcotest.test_case "overflow" `Quick test_incarnation_overflow ] );
      ( "read-only staleness",
        [ Alcotest.test_case "stale abort + retry" `Quick test_read_only_aborts_on_stale ] );
      ( "api limits",
        [
          Alcotest.test_case "create validations" `Quick test_create_validations;
          Alcotest.test_case "set_config validates" `Quick
            test_set_config_validates;
          Alcotest.test_case "nested rejected" `Quick
            test_nested_atomically_rejected;
          Alcotest.test_case "strategy switch" `Quick
            test_strategy_switch_via_set_config;
          Alcotest.test_case "lockenc maxima" `Quick test_lockenc_maxima;
        ] );
      ( "conflict waiting",
        [
          Alcotest.test_case "correct and calmer" `Quick
            test_conflict_wait_correct_and_calmer;
          Alcotest.test_case "validated" `Quick test_conflict_wait_validated;
        ] );
      ( "tuner corners",
        [
          Alcotest.test_case "second-best switch" `Quick
            test_tuner_second_best_switch;
          Alcotest.test_case "flat landscape" `Quick
            test_tuner_nop_at_converged_best;
        ] );
      ( "overwrite workloads",
        [
          Alcotest.test_case "heavy write sets" `Quick
            test_overwrite_workload_writes_heavily;
          Alcotest.test_case "membership preserved" `Quick
            test_overwrite_preserves_contents;
        ] );
      ( "contention managers",
        [
          Alcotest.test_case "registry" `Quick test_cm_registry;
          Alcotest.test_case "decision tables" `Quick test_cm_decision_tables;
          QCheck_alcotest.to_alcotest cm_kill_total_order;
          Alcotest.test_case "effective max retries" `Quick
            test_effective_max_retries;
        ] );
      ( "backoff determinism",
        [
          Alcotest.test_case "bounded at any attempts" `Quick
            test_backoff_bounded_at_any_attempts;
          Alcotest.test_case "replay stable" `Quick test_backoff_replay_stable;
        ] );
      ( "fairness counters",
        [ Alcotest.test_case "record/merge/pp" `Quick test_fairness_counters ] );
      ( "watchdog",
        [
          Alcotest.test_case "create validation" `Quick
            test_watchdog_validation;
          Alcotest.test_case "livelock ladder + recovery" `Quick
            test_watchdog_livelock_ladder;
          Alcotest.test_case "starvation fires once" `Quick
            test_watchdog_starvation_once;
        ] );
      ( "workload patterns",
        [
          Alcotest.test_case "names" `Quick test_pattern_names;
          Alcotest.test_case "uniform stream identity" `Quick
            test_uniform_stream_identity;
          Alcotest.test_case "skew concentrates" `Quick
            test_skewed_patterns_concentrate;
          Alcotest.test_case "bimodal/asym roles" `Quick test_pattern_roles;
        ] );
      ( "progress guarantees",
        [
          Alcotest.test_case "suicide livelocks" `Quick test_suicide_livelocks;
          Alcotest.test_case "watchdog rescues suicide" `Quick
            test_watchdog_rescues_suicide;
          Alcotest.test_case "seqlock STM is obstruction-free" `Quick
            test_seqlock_obstruction_free;
          Alcotest.test_case "karma/greedy commit everything" `Quick
            test_priority_cms_commit_everything;
          Alcotest.test_case "serialize commits via escalation" `Quick
            test_serialize_commits_via_escalation;
        ] );
    ]
