(* Robustness and edge-case tests: failure injection around the write
   barriers, write-through incarnation overflow, read-only staleness aborts,
   API misuse errors, tuner corner rules, overwrite workloads. *)

module R = Tstm_runtime.Runtime_sim
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module Config = Tinystm.Config
module Lockenc = Tinystm.Lockenc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

exception Boom

let make ?(strategy = Config.Write_back) ?(n_locks = 256) ?max_clock () =
  Ts.create ~config:(Config.make ~n_locks ~strategy ()) ?max_clock
    ~memory_words:4096 ()

(* ------------------------------------------------------------------ *)
(* Failure injection                                                   *)
(* ------------------------------------------------------------------ *)

(* The abort-path tests only need the common [Tm_intf.TM] operations plus a
   way to build an instance and inspect the arena, so they are written once
   as a functor and instantiated for TinySTM (both write strategies) and
   TL2. *)
module type INSTANCE = sig
  module T : Tstm_tm.Tm_intf.TM

  val make : unit -> T.t
  val live_words : T.t -> int
end

module Failure_injection (I : INSTANCE) = struct
  module T = I.T

  (* Abort after each prefix of a multi-write transaction: memory must
     always revert to the pre-transaction image. *)
  let test_abort_after_every_prefix () =
    let t = I.make () in
    let a = T.atomically t (fun tx -> T.alloc tx 8) in
    T.atomically t (fun tx ->
        for i = 0 to 7 do
          T.write tx (a + i) (100 + i)
        done);
    for prefix = 1 to 8 do
      (try
         T.atomically t (fun tx ->
             for i = 0 to prefix - 1 do
               T.write tx (a + i) (-1)
             done;
             raise Boom)
       with Boom -> ());
      for i = 0 to 7 do
        check_int
          (Printf.sprintf "prefix %d word %d restored" prefix i)
          (100 + i)
          (T.atomically t (fun tx -> T.read tx (a + i)))
      done
    done

  (* Repeated writes to the same word inside an aborting transaction: the
     rollback (undo log or discarded write set) must restore the *original*
     value, not an intermediate one. *)
  let test_abort_restores_oldest () =
    let t = I.make () in
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    T.atomically t (fun tx -> T.write tx a 7);
    (try
       T.atomically t (fun tx ->
           T.write tx a 1;
           T.write tx a 2;
           T.write tx a 3;
           raise Boom)
     with Boom -> ());
    check_int "original restored" 7 (T.atomically t (fun tx -> T.read tx a))

  (* Writes to words freshly allocated by the aborting transaction must not
     leak: the block is reclaimed and reusable. *)
  let test_abort_with_writes_to_fresh_alloc () =
    let t = I.make () in
    let live_before = I.live_words t in
    (try
       T.atomically t (fun tx ->
           let b = T.alloc tx 4 in
           for i = 0 to 3 do
             T.write tx (b + i) 999
           done;
           raise Boom)
     with Boom -> ());
    check_int "no leak" live_before (I.live_words t)

  let tests tag =
    [
      Alcotest.test_case (tag ^ ": abort after every prefix") `Quick
        test_abort_after_every_prefix;
      Alcotest.test_case (tag ^ ": abort restores oldest") `Quick
        test_abort_restores_oldest;
      Alcotest.test_case (tag ^ ": abort with fresh alloc") `Quick
        test_abort_with_writes_to_fresh_alloc;
    ]
end

module Inject_wb = Failure_injection (struct
  module T = Ts

  let make () = make ~strategy:Config.Write_back ()
  let live_words t = Ts.V.live_words (Ts.memory t)
end)

module Inject_wt = Failure_injection (struct
  module T = Ts

  let make () = make ~strategy:Config.Write_through ()
  let live_words t = Ts.V.live_words (Ts.memory t)
end)

module Inject_tl2 = Failure_injection (struct
  module T = Tl

  let make () = Tl.create ~n_locks:256 ~memory_words:4096 ()
  let live_words t = Tl.V.live_words (Tl.memory t)
end)

(* ------------------------------------------------------------------ *)
(* Write-through incarnation overflow                                  *)
(* ------------------------------------------------------------------ *)

let test_incarnation_overflow () =
  (* More aborting writers on one lock than the 3-bit incarnation space:
     the implementation must take a fresh version from the clock and stay
     consistent. *)
  let t = make ~strategy:Config.Write_through () in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 55);
  for _ = 1 to 3 * (Lockenc.max_incarnation + 1) do
    try
      Ts.atomically t (fun tx ->
          Ts.write tx a 0;
          raise Boom)
    with Boom -> ()
  done;
  check_int "value survives incarnation wrap" 55
    (Ts.atomically t (fun tx -> Ts.read tx a));
  (* The instance still commits fine afterwards. *)
  Ts.atomically t (fun tx -> Ts.write tx a 56);
  check_int "post-wrap commit" 56 (Ts.atomically t (fun tx -> Ts.read tx a))

(* ------------------------------------------------------------------ *)
(* Read-only staleness                                                 *)
(* ------------------------------------------------------------------ *)

let test_read_only_aborts_on_stale () =
  (* A read-only transaction cannot extend its snapshot: arrange a writer
     commit between its two reads and check it still returns a consistent
     pair (after internal retry), with at least one recorded abort. *)
  let t = make () in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 2) in
  Ts.atomically t (fun tx ->
      Ts.write tx a 1;
      Ts.write tx (a + 1) 1);
  Ts.reset_stats t;
  let seen = ref (0, 0) in
  R.run ~nthreads:2 (fun tid ->
      if tid = 0 then begin
        (* Writer: commit a coherent bump while the reader sleeps. *)
        R.charge 3_000;
        Ts.atomically t (fun tx ->
            Ts.write tx a 2;
            Ts.write tx (a + 1) 2)
      end
      else
        seen :=
          Ts.atomically ~read_only:true t (fun tx ->
              let x = Ts.read tx a in
              R.charge 20_000 (* give the writer time to land in between *);
              let y = Ts.read tx (a + 1) in
              (x, y)))
  ;
  let x, y = !seen in
  check_bool "consistent pair" true (x = y);
  check_int "reader saw the new snapshot after retry" 2 x;
  let s = Ts.stats t in
  check_bool "one read-only abort recorded" true
    (s.Tstm_tm.Tm_stats.aborts_validation >= 1)

(* ------------------------------------------------------------------ *)
(* API misuse and limits                                               *)
(* ------------------------------------------------------------------ *)

let test_create_validations () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "max_threads 0" true
    (bad (fun () -> Ts.create ~max_threads:0 ~memory_words:64 ()));
  check_bool "max_threads beyond tid space" true
    (bad (fun () -> Ts.create ~max_threads:500 ~memory_words:64 ()));
  check_bool "absurd max_clock" true
    (bad (fun () -> Ts.create ~max_clock:2 ~memory_words:64 ()));
  check_bool "tl2 bad locks" true
    (bad (fun () -> Tl.create ~n_locks:1000 ~memory_words:64 ()))

let test_set_config_validates () =
  let t = make () in
  (try
     Ts.set_config t
       { Config.n_locks = 4; shifts = 0; hierarchy = 8; hierarchy2 = 1; strategy = Config.Write_back };
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  (* Instance unharmed. *)
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 5);
  check_int "still functional" 5 (Ts.atomically t (fun tx -> Ts.read tx a))

let test_nested_atomically_rejected () =
  let t = make () in
  try
    Ts.atomically t (fun _ -> Ts.atomically t (fun _ -> ()));
    Alcotest.fail "nested transaction must be rejected"
  with Invalid_argument _ -> ()

let test_strategy_switch_via_set_config () =
  (* Re-tuning may also flip the write strategy; data survives. *)
  let t = make ~strategy:Config.Write_back () in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 11);
  Ts.set_config t (Config.make ~n_locks:512 ~strategy:Config.Write_through ());
  check_int "data kept across strategy switch" 11
    (Ts.atomically t (fun tx -> Ts.read tx a));
  (try
     Ts.atomically t (fun tx ->
         Ts.write tx a 12;
         raise Boom)
   with Boom -> ());
  check_int "write-through undo works after switch" 11
    (Ts.atomically t (fun tx -> Ts.read tx a))

(* ------------------------------------------------------------------ *)
(* Bounded conflict waiting (paper §3.1 alternative policy)            *)
(* ------------------------------------------------------------------ *)

let hot_counter_run ~conflict_wait =
  let t =
    Ts.create
      ~config:(Config.make ~n_locks:64 ())
      ~conflict_wait ~memory_words:256 ()
  in
  let a = Ts.atomically t (fun tx -> Ts.alloc tx 1) in
  Ts.atomically t (fun tx -> Ts.write tx a 0);
  Ts.reset_stats t;
  R.run ~nthreads:8 (fun _ ->
      for _ = 1 to 100 do
        Ts.atomically t (fun tx -> Ts.write tx a (Ts.read tx a + 1))
      done);
  let s = Ts.stats t in
  let v = Ts.atomically t (fun tx -> Ts.read tx a) in
  (v, Tstm_tm.Tm_stats.aborts s)

let test_conflict_wait_correct_and_calmer () =
  let v0, aborts0 = hot_counter_run ~conflict_wait:0 in
  let v1, aborts1 = hot_counter_run ~conflict_wait:16 in
  check_int "exact count without waiting" 800 v0;
  check_int "exact count with waiting" 800 v1;
  check_bool
    (Printf.sprintf "waiting reduces aborts (%d -> %d)" aborts0 aborts1)
    true (aborts1 < aborts0)

let test_conflict_wait_validated () =
  try
    ignore (Ts.create ~conflict_wait:(-1) ~memory_words:64 ());
    Alcotest.fail "negative conflict_wait accepted"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Lockenc boundaries                                                  *)
(* ------------------------------------------------------------------ *)

let test_lockenc_maxima () =
  let w =
    Lockenc.unlocked ~version:Lockenc.max_version
      ~incarnation:Lockenc.max_incarnation
  in
  check_int "max version roundtrip" Lockenc.max_version (Lockenc.version w);
  check_int "max incarnation roundtrip" Lockenc.max_incarnation
    (Lockenc.incarnation w);
  let l = Lockenc.locked ~tid:Lockenc.max_tid ~payload:0 in
  check_int "max tid roundtrip" Lockenc.max_tid (Lockenc.owner l);
  check_bool "distinct" true (w <> l)

(* ------------------------------------------------------------------ *)
(* Tuner corner rules                                                  *)
(* ------------------------------------------------------------------ *)

module Tuner = Tstm_tuning.Tuner

let test_tuner_second_best_switch () =
  (* Explore a 1-D landscape until the best is saturated, then degrade the
     best configuration's throughput below the second best: the tuner must
     switch to the second best. *)
  let t = Tuner.create ~seed:2 (Config.make ~n_locks:16 ~shifts:0 ~hierarchy:1 ()) in
  (* Synthetic: locks=16 scores 100, every other config scores 90 the first
     time.  After convergence we feed the best config 50. *)
  let fed = ref 0 in
  let decide () =
    let cfg = Tuner.current t in
    let base = if cfg.Config.n_locks = 16 then 100.0 else 90.0 in
    let v = if !fed > 120 && cfg.Config.n_locks = 16 then 50.0 else base in
    incr fed;
    Tuner.record t v
  in
  for _ = 1 to 400 do
    ignore (decide ())
  done;
  (* 400 measurements are far past the degradation point: the tuner has seen
     the best config score 50 and must have moved off it for good. *)
  check_bool "saw the degradation phase" true (!fed > 120);
  check_bool "left the degraded n_locks=16" true
    ((Tuner.current t).Config.n_locks <> 16)

let test_tuner_nop_at_converged_best () =
  (* Single legal configuration: every neighbour forbidden by bounds is not
     constructible here, so emulate with a flat landscape and check the tuner
     eventually revisits (nop) its best rather than crashing. *)
  let t = Tuner.create ~seed:4 (Config.make ~n_locks:16 ~shifts:0 ~hierarchy:1 ()) in
  for _ = 1 to 300 do
    ignore (Tuner.record t 100.0)
  done;
  Config.validate (Tuner.current t);
  check_bool "still exploring or parked" true (Tuner.explored t >= 1)

(* ------------------------------------------------------------------ *)
(* Overwrite workloads                                                 *)
(* ------------------------------------------------------------------ *)

module D = Tstm_harness.Driver.Make (R) (Ts)
module W = Tstm_harness.Workload

let test_overwrite_workload_writes_heavily () =
  let spec =
    W.make ~structure:W.List ~initial_size:128 ~update_pct:0.0
      ~overwrite_pct:100.0 ~nthreads:2 ~duration:0.001 ()
  in
  let t = Ts.create ~config:(Config.make ~n_locks:1024 ())
      ~memory_words:(W.memory_words_for spec) () in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let r, _ = D.run t ops spec in
  check_bool "commits" true (r.W.commits > 0);
  let writes_per_tx =
    float_of_int r.W.stats.Tstm_tm.Tm_stats.writes /. float_of_int r.W.commits
  in
  check_bool
    (Printf.sprintf "large write sets (%.1f writes/tx)" writes_per_tx)
    true (writes_per_tx > 10.0)

let test_overwrite_preserves_contents () =
  let spec =
    W.make ~structure:W.Rbtree ~initial_size:64 ~update_pct:0.0
      ~overwrite_pct:50.0 ~nthreads:4 ~duration:0.001 ()
  in
  let t = Ts.create ~config:(Config.make ~n_locks:1024 ())
      ~memory_words:(W.memory_words_for spec) () in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let before = Ts.atomically t (fun tx -> ops.D.op_size tx) in
  ignore (D.run t ops spec);
  check_int "overwrites do not change membership" before
    (Ts.atomically t (fun tx -> ops.D.op_size tx))

let () =
  Alcotest.run "robustness"
    [
      ( "failure injection",
        Inject_wb.tests (Config.strategy_to_string Config.Write_back)
        @ Inject_wt.tests (Config.strategy_to_string Config.Write_through)
        @ Inject_tl2.tests "tl2" );
      ( "write-through incarnations",
        [ Alcotest.test_case "overflow" `Quick test_incarnation_overflow ] );
      ( "read-only staleness",
        [ Alcotest.test_case "stale abort + retry" `Quick test_read_only_aborts_on_stale ] );
      ( "api limits",
        [
          Alcotest.test_case "create validations" `Quick test_create_validations;
          Alcotest.test_case "set_config validates" `Quick
            test_set_config_validates;
          Alcotest.test_case "nested rejected" `Quick
            test_nested_atomically_rejected;
          Alcotest.test_case "strategy switch" `Quick
            test_strategy_switch_via_set_config;
          Alcotest.test_case "lockenc maxima" `Quick test_lockenc_maxima;
        ] );
      ( "conflict waiting",
        [
          Alcotest.test_case "correct and calmer" `Quick
            test_conflict_wait_correct_and_calmer;
          Alcotest.test_case "validated" `Quick test_conflict_wait_validated;
        ] );
      ( "tuner corners",
        [
          Alcotest.test_case "second-best switch" `Quick
            test_tuner_second_best_switch;
          Alcotest.test_case "flat landscape" `Quick
            test_tuner_nop_at_converged_best;
        ] );
      ( "overwrite workloads",
        [
          Alcotest.test_case "heavy write sets" `Quick
            test_overwrite_workload_writes_heavily;
          Alcotest.test_case "membership preserved" `Quick
            test_overwrite_preserves_contents;
        ] );
    ]
