(* Smoke test behind the @obs-smoke alias (part of @runtest): run one traced
   measurement period of the flagship microbenchmark, export every format,
   and validate what came out.  Exits non-zero on any violation. *)

module Obs = Tstm_obs
module W = Tstm_harness.Workload
module S = Tstm_harness.Scenario

let check name cond = if not cond then failwith ("obs-smoke: " ^ name)

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let () =
  let spec =
    W.make ~structure:W.List ~initial_size:64 ~update_pct:20.0 ~nthreads:4
      ~duration:0.001 ~seed:11 ()
  in
  let r, collector, metrics =
    S.run_intset_observed ~stm:"tinystm-wb" ~period:0.001 ~n_periods:1 spec
  in
  check "run committed transactions" (r.W.commits > 0);
  check "events were recorded"
    (Array.exists (fun ring -> Obs.Ring.length ring > 0)
       collector.Obs.Sink.rings);
  (* Chrome trace: write, re-read, validate. *)
  let trace_path = "obs_smoke_trace.json" in
  Obs.Export.write_chrome_trace ~path:trace_path collector;
  let ic = open_in_bin trace_path in
  let json = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check "trace file is valid JSON" (Obs.Export.json_is_valid json);
  check "trace has traceEvents" (contains "\"traceEvents\"" json);
  check "trace has tx slices" (contains "\"name\":\"tx\"" json);
  check "trace has per-CPU tracks" (contains "thread_name" json);
  (* Metrics CSV: write, re-read, validate shape. *)
  let csv_path = "obs_smoke_metrics.csv" in
  Obs.Metrics.write ~path:csv_path metrics;
  let ic = open_in_bin csv_path in
  let csv = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (match String.split_on_char '\n' (String.trim csv) with
  | [ header; _row ] ->
      check "CSV header has throughput column" (contains "throughput_tx_s" header);
      check "CSV header has p99 column" (contains "p99_commit_cycles" header)
  | lines ->
      failwith
        (Printf.sprintf "obs-smoke: expected header + 1 CSV row, got %d lines"
           (List.length lines)));
  (* Contention report renders. *)
  let report = Obs.Export.top_contended ~n:5 collector in
  check "contention report non-empty" (String.length report > 0);
  Printf.printf
    "obs-smoke OK: %d commits, %d events, trace %d bytes, csv %d bytes\n"
    r.W.commits
    (Array.fold_left (fun a ring -> a + Obs.Ring.length ring) 0
       collector.Obs.Sink.rings)
    (String.length json) (String.length csv)
