(* Property tests for the word-level encodings: TinySTM's versioned-lock
   words ([Lockenc]) with the version range driven to and beyond the default
   clock roll-over boundary, and the hierarchical-array bit masks
   ([Hmask]) against a reference model. *)

module Lockenc = Tinystm.Lockenc
module Hmask = Tinystm.Hmask

let default_max_clock = Lockenc.max_version - 64

(* Versions that matter: small, around the default roll-over boundary
   (where the fence resets the clock), and up to the encoding limit. *)
let version_gen =
  QCheck.(
    oneof
      [
        int_range 0 4096;
        int_range (default_max_clock - 8) (default_max_clock + 8);
        int_range (Lockenc.max_version - 8) Lockenc.max_version;
      ])

let prop_unlocked_roundtrip =
  QCheck.Test.make ~name:"unlocked roundtrip across rollover boundary"
    ~count:1000
    QCheck.(pair version_gen (int_range 0 Lockenc.max_incarnation))
    (fun (version, incarnation) ->
      let w = Lockenc.unlocked ~version ~incarnation in
      (not (Lockenc.is_locked w))
      && Lockenc.version w = version
      && Lockenc.incarnation w = incarnation)

let prop_incarnation_isolated =
  QCheck.Test.make ~name:"incarnation bits never bleed into the version"
    ~count:1000 version_gen (fun version ->
      List.for_all
        (fun inc ->
          Lockenc.version (Lockenc.unlocked ~version ~incarnation:inc)
          = version)
        [ 0; 1; Lockenc.max_incarnation ])

let prop_locked_roundtrip =
  QCheck.Test.make ~name:"locked roundtrip over full owner-id range"
    ~count:1000
    QCheck.(pair (int_range 0 Lockenc.max_tid) (int_range 0 (1 lsl 40)))
    (fun (tid, payload) ->
      let w = Lockenc.locked ~tid ~payload in
      Lockenc.is_locked w
      && Lockenc.owner w = tid
      && Lockenc.payload w = payload)

let prop_no_payload_distinct =
  QCheck.Test.make ~name:"no_payload distinguishable from real payloads"
    ~count:500
    QCheck.(int_range 0 (1 lsl 30))
    (fun payload ->
      payload = Lockenc.no_payload
      || Lockenc.payload
           (Lockenc.locked ~tid:0 ~payload:Lockenc.no_payload)
         <> payload)

let prop_disjoint =
  QCheck.Test.make
    ~name:"locked and unlocked words never collide at the boundary"
    ~count:1000
    QCheck.(
      quad version_gen
        (int_range 0 Lockenc.max_incarnation)
        (int_range 0 Lockenc.max_tid)
        (int_range 0 (1 lsl 30)))
    (fun (version, incarnation, tid, payload) ->
      Lockenc.unlocked ~version ~incarnation
      <> Lockenc.locked ~tid ~payload)

(* ------------------------------------------------------------------ *)
(* Hmask against a reference model                                     *)
(* ------------------------------------------------------------------ *)

(* A random add/clear script over a small slot range, mirrored into a list
   model: membership, cardinality, first-add reporting and insertion-order
   iteration must all agree. *)
let prop_hmask_model =
  let script =
    QCheck.(
      pair (int_range 1 64)
        (small_list (pair bool (int_range 0 63))))
  in
  QCheck.Test.make ~name:"hmask agrees with a list model" ~count:1000 script
    (fun (h, ops) ->
      let m = Hmask.create h in
      let model = ref [] in
      let ok = ref (Hmask.size m = h && Hmask.cardinal m = 0) in
      List.iter
        (fun (is_clear, slot) ->
          if is_clear && slot mod 7 = 0 then begin
            Hmask.clear m;
            model := []
          end
          else
            let i = slot mod h in
            let fresh = Hmask.add m i in
            let model_fresh = not (List.mem i !model) in
            if model_fresh then model := !model @ [ i ];
            if fresh <> model_fresh then ok := false)
        ops;
      let iterated = ref [] in
      Hmask.iter m (fun i -> iterated := i :: !iterated);
      !ok
      && List.rev !iterated = !model
      && Hmask.cardinal m = List.length !model
      && List.for_all (fun i -> Hmask.mem m i) !model
      && List.for_all
           (fun i -> Hmask.mem m i = List.mem i !model)
           (List.init h Fun.id))

let prop_hmask_add_idempotent =
  QCheck.Test.make ~name:"hmask add is idempotent" ~count:500
    QCheck.(pair (int_range 1 64) (int_range 0 63))
    (fun (h, slot) ->
      let m = Hmask.create h in
      let i = slot mod h in
      Hmask.add m i
      && (not (Hmask.add m i))
      && Hmask.cardinal m = 1
      && Hmask.mem m i)

let prop_hmask_clear_resets =
  QCheck.Test.make ~name:"hmask clear resets every bit" ~count:500
    QCheck.(pair (int_range 1 64) (small_list (int_range 0 63)))
    (fun (h, slots) ->
      let m = Hmask.create h in
      List.iter (fun s -> ignore (Hmask.add m (s mod h))) slots;
      Hmask.clear m;
      Hmask.cardinal m = 0
      && List.for_all (fun i -> not (Hmask.mem m i)) (List.init h Fun.id))

let () =
  Alcotest.run "encodings"
    [
      ( "lockenc",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_unlocked_roundtrip;
            prop_incarnation_isolated;
            prop_locked_roundtrip;
            prop_no_payload_distinct;
            prop_disjoint;
          ] );
      ( "hmask",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_hmask_model;
            prop_hmask_add_idempotent;
            prop_hmask_clear_resets;
          ] );
    ]
