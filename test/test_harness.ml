(* Tests for the benchmark harness: spec validation, population, the
   size-preserving update discipline, determinism, the periodic-control
   driver, scenario dispatch and the auto-tuned runs. *)

module W = Tstm_harness.Workload
module S = Tstm_harness.Scenario
module R = Tstm_runtime.Runtime_sim
module D = Tstm_harness.Driver.Make (R) (S.Ts)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let tiny ?(structure = W.List) ?(size = 64) ?(updates = 20.0)
    ?(overwrites = 0.0) ?(threads = 4) ?(duration = 0.0005) () =
  W.make ~structure ~initial_size:size ~update_pct:updates
    ~overwrite_pct:overwrites ~nthreads:threads ~duration ()

(* ------------------------------------------------------------------ *)
(* Workload                                                           *)
(* ------------------------------------------------------------------ *)

let test_spec_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "zero size" true (bad (fun () -> W.make ~initial_size:0 ()));
  check_bool "range <= size" true
    (bad (fun () -> W.make ~initial_size:100 ~key_range:100 ()));
  check_bool "mix > 100%" true
    (bad (fun () -> W.make ~update_pct:60.0 ~overwrite_pct:50.0 ()));
  check_bool "no threads" true (bad (fun () -> W.make ~nthreads:0 ()));
  check_bool "no duration" true (bad (fun () -> W.make ~duration:0.0 ()))

let test_spec_defaults () =
  let s = W.make ~initial_size:300 () in
  check_int "range defaults to 2x size" 600 s.W.key_range;
  check_bool "memory sized" true (W.memory_words_for s > 300 * 6)

let test_structure_strings () =
  List.iter
    (fun st ->
      Alcotest.(check (option string))
        "roundtrip"
        (Some (W.structure_to_string st))
        (Option.map W.structure_to_string
           (W.structure_of_string (W.structure_to_string st))))
    [ W.List; W.Rbtree; W.Skiplist; W.Hashset ];
  check_bool "unknown" true (W.structure_of_string "foo" = None)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let make_instance spec =
  S.Ts.create
    ~config:(Tinystm.Config.make ~n_locks:1024 ())
    ~memory_words:(W.memory_words_for spec) ()

let test_populate_exact_size () =
  List.iter
    (fun structure ->
      let spec = tiny ~structure () in
      let t = make_instance spec in
      let ops = D.make_structure t spec.W.structure in
      D.populate t ops spec;
      check_int
        (W.structure_to_string structure ^ " populated size")
        spec.W.initial_size
        (S.Ts.atomically t (fun tx -> ops.D.op_size tx)))
    [ W.List; W.Rbtree; W.Skiplist; W.Hashset ]

let test_run_produces_commits () =
  let spec = tiny () in
  let t = make_instance spec in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let r, _ = D.run t ops spec in
  check_bool "commits" true (r.W.commits > 0);
  Alcotest.(check (float 1e-6))
    "throughput consistent"
    (float_of_int r.W.commits /. spec.W.duration)
    r.W.throughput

let test_size_preserved_by_updates () =
  let spec = tiny ~size:128 ~updates:100.0 ~duration:0.001 () in
  let t = make_instance spec in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  ignore (D.run t ops spec);
  let final = S.Ts.atomically t (fun tx -> ops.D.op_size tx) in
  (* Each thread holds at most one pending insertion. *)
  check_bool
    (Printf.sprintf "size stays near initial (%d vs 128)" final)
    true
    (abs (final - 128) <= spec.W.nthreads)

let test_run_deterministic () =
  let go () =
    let spec = tiny ~structure:W.Rbtree ~size:256 () in
    let t = make_instance spec in
    let ops = D.make_structure t spec.W.structure in
    D.populate t ops spec;
    let r, _ = D.run t ops spec in
    (r.W.commits, r.W.aborts)
  in
  check_bool "bit-identical" true (go () = go ())

let test_seed_changes_runs () =
  let go seed =
    let spec =
      W.make ~structure:W.List ~initial_size:64 ~nthreads:4 ~duration:0.0005
        ~seed ()
    in
    let t = make_instance spec in
    let ops = D.make_structure t spec.W.structure in
    D.populate t ops spec;
    (fst (D.run t ops spec)).W.commits
  in
  check_bool "different seeds differ" true (go 1 <> go 2)

let test_control_driver_periods () =
  let spec = tiny ~duration:1.0 () in
  let t = make_instance spec in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let calls = ref [] in
  ignore
    (D.run
       ~control:
         {
           D.period = 0.0005;
           n_periods = 5;
           on_period = (fun idx thr _stats -> calls := (idx, thr) :: !calls);
         }
       t ops spec);
  let calls = List.rev !calls in
  check_int "five periods" 5 (List.length calls);
  List.iteri
    (fun i (idx, thr) ->
      check_int "indices in order" i idx;
      check_bool "throughput positive" true (thr > 0.0))
    calls

let test_control_driver_stats_cumulative () =
  let spec = tiny ~duration:1.0 () in
  let t = make_instance spec in
  let ops = D.make_structure t spec.W.structure in
  D.populate t ops spec;
  let prev = ref (-1) in
  ignore
    (D.run
       ~control:
         {
           D.period = 0.0005;
           n_periods = 4;
           on_period =
             (fun _ _ stats ->
               check_bool "commits non-decreasing" true
                 (stats.Tstm_tm.Tm_stats.commits >= !prev);
               prev := stats.Tstm_tm.Tm_stats.commits);
         }
       t ops spec)

(* ------------------------------------------------------------------ *)
(* Scenario                                                           *)
(* ------------------------------------------------------------------ *)

let test_scenario_all_stms () =
  List.iter
    (fun stm ->
      let r = S.run_intset ~stm (tiny ()) in
      check_bool (S.stm_label stm ^ " commits") true (r.W.commits > 0))
    S.all_stms

let test_scenario_tuning_params_effect () =
  (* Tiny lock array must behave differently (more conflicts) than a big
     one on a contended list: just assert both run and produce commits, and
     that results differ (the parameters are actually applied). *)
  let spec = tiny ~size:128 ~updates:50.0 ~threads:8 ~duration:0.001 () in
  let a = S.run_intset ~stm:"tinystm-wb" ~n_locks:16 spec in
  let b = S.run_intset ~stm:"tinystm-wb" ~n_locks:(1 lsl 16) spec in
  check_bool "both ran" true (a.W.commits > 0 && b.W.commits > 0);
  check_bool "parameters change behaviour" true
    (a.W.commits <> b.W.commits || a.W.aborts <> b.W.aborts)

let test_scenario_vacation () =
  let spec =
    { S.Vac.default_spec with S.Vac.n_relations = 64; n_customers = 64 }
  in
  let r = S.run_vacation ~spec ~nthreads:4 ~duration:0.001 ~seed:3 () in
  check_bool "vacation commits" true (r.W.commits > 0)

let test_autotune_trace_shape () =
  let spec = tiny ~size:128 ~threads:4 ~duration:1.0 () in
  let tr = S.run_intset_autotuned ~period:0.0005 ~n_steps:6 spec in
  check_int "six steps" 6 (List.length tr.S.steps);
  check_int "rates per step" 6 (List.length tr.S.validation_rates);
  List.iter
    (fun (s : Tstm_tuning.Tuner.step) ->
      Tinystm.Config.validate s.Tstm_tuning.Tuner.config;
      check_bool "throughput > 0" true (s.Tstm_tuning.Tuner.throughput > 0.0))
    tr.S.steps

let test_autotune_applies_configs () =
  (* After an auto-tuned run the instance's final config must equal the last
     config the tuner settled on... we can't reach the instance from here,
     but we can at least check the tuner explored more than one config. *)
  let spec = tiny ~size:128 ~threads:4 ~duration:1.0 () in
  let tr = S.run_intset_autotuned ~period:0.0005 ~n_steps:8 spec in
  let distinct =
    List.sort_uniq compare
      (List.map
         (fun (s : Tstm_tuning.Tuner.step) ->
           Tinystm.Config.to_string s.Tstm_tuning.Tuner.config)
         tr.S.steps)
  in
  check_bool "explored several configs" true (List.length distinct >= 2)

(* ------------------------------------------------------------------ *)
(* Registry metadata and the capability API                           *)
(* ------------------------------------------------------------------ *)

module Registry = Tstm_tm.Registry
module Intf = Tstm_tm.Tm_intf

let test_registry_metadata () =
  Alcotest.(check (list string))
    "families in first-registration order"
    [ "tinystm"; "tl2"; "norec" ]
    (Registry.families ());
  Alcotest.(check string) "alias resolves to family" "tinystm"
    (Registry.family "wb");
  let caps = Registry.capabilities "norec" in
  check_bool "norec has no lock array" false caps.Intf.lock_array;
  check_bool "norec extends snapshots" true caps.Intf.snapshot_extension;
  check_bool "tl2 does not extend snapshots" false
    (Registry.capabilities "tl2").Intf.snapshot_extension;
  check_bool "tinystm reconfigures" true
    (Registry.capabilities "tinystm-wb").Intf.dynamic_reconfig;
  check_int "fold visits every entry"
    (List.length (Registry.names ()))
    (Registry.fold (fun n _ -> n + 1) 0);
  check_bool "entry_of unknown is None" true
    (Registry.entry_of "no-such-stm" = None)

let test_registry_require () =
  Registry.require "tinystm-wb" "dynamic_reconfig";
  Registry.require "norec" "snapshot_extension";
  (match Registry.require "norec" "lock_array" with
  | exception Intf.Capability_error { stm = "norec"; capability = "lock_array" }
    -> ()
  | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
  | () -> Alcotest.fail "missing capability accepted");
  let invalid f = try f (); false with Invalid_argument _ -> true in
  check_bool "unknown capability name rejected" true
    (invalid (fun () -> Registry.require "norec" "warp_drive"));
  check_bool "unknown stm rejected" true
    (invalid (fun () -> Registry.require "no-such-stm" "lock_array"))

let test_configure_capability_error () =
  (* [configure] on a non-reconfigurable STM is the typed error naming the
     STM and the missing capability; on TinySTM it just applies. *)
  List.iter
    (fun stm ->
      let (module M) = Registry.get stm in
      let t = M.create ~memory_words:64 () in
      match M.configure t Intf.default_tuning with
      | exception Intf.Capability_error { stm = s; capability } ->
          Alcotest.(check string) (stm ^ " error names the stm") stm s;
          Alcotest.(check string)
            (stm ^ " error names the capability")
            "dynamic_reconfig" capability
      | () -> Alcotest.fail (stm ^ ": configure should be a capability error"))
    [ "tl2"; "norec" ];
  let (module M) = Registry.get "tinystm-wb" in
  let t = M.create ~memory_words:64 () in
  M.configure t Intf.default_tuning

(* ------------------------------------------------------------------ *)
(* Figures smoke                                                      *)
(* ------------------------------------------------------------------ *)

let smoke_profile =
  {
    Tstm_harness.Figures.label = "smoke";
    dur_tree = 0.0003;
    dur_list = 0.0003;
    threads = [ 1; 2 ];
    fig5_sizes = [ 64 ];
    fig5_updates = [ 0.0; 50.0 ];
    surface_size = 64;
    surface_lock_exps = [ 8; 12 ];
    surface_shifts = [ 0; 2 ];
    fig7_lock_exps = [ 10 ];
    fig7_shifts = [ 0 ];
    fig7_relations = 64;
    fig8_h = [ 4 ];
    fig9_lock_exps = [ 8; 12 ];
    fig9_h = [ 4; 16 ];
    tune_size = 64;
    tune_period = 0.0005;
    tune_steps = 4;
  }

let all_finite (out : Tstm_harness.Figures.output) =
  let check arr = Array.for_all (fun v -> Float.is_finite v) arr in
  match out with
  | Tstm_harness.Figures.Table t ->
      check t.Tstm_util.Series.x
      && List.for_all (fun (_, c) -> check c) t.Tstm_util.Series.columns
  | Tstm_harness.Figures.Surface s ->
      Array.for_all check s.Tstm_util.Series.values

let test_every_figure_smokes () =
  List.iter
    (fun n ->
      let outputs = Tstm_harness.Figures.run_figure smoke_profile n in
      check_bool (Printf.sprintf "figure %d has output" n) true
        (outputs <> []);
      List.iter
        (fun o ->
          check_bool (Printf.sprintf "figure %d finite" n) true (all_finite o))
        outputs)
    Tstm_harness.Figures.fig_numbers

let () =
  Alcotest.run "tstm_harness"
    [
      ( "workload",
        [
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "defaults" `Quick test_spec_defaults;
          Alcotest.test_case "structure strings" `Quick test_structure_strings;
        ] );
      ( "driver",
        [
          Alcotest.test_case "populate size" `Quick test_populate_exact_size;
          Alcotest.test_case "run commits" `Quick test_run_produces_commits;
          Alcotest.test_case "size preserved" `Quick
            test_size_preserved_by_updates;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_runs;
          Alcotest.test_case "control periods" `Quick
            test_control_driver_periods;
          Alcotest.test_case "control stats" `Quick
            test_control_driver_stats_cumulative;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "all stms" `Quick test_scenario_all_stms;
          Alcotest.test_case "tuning params" `Quick
            test_scenario_tuning_params_effect;
          Alcotest.test_case "vacation" `Quick test_scenario_vacation;
          Alcotest.test_case "autotune trace" `Quick test_autotune_trace_shape;
          Alcotest.test_case "autotune explores" `Quick
            test_autotune_applies_configs;
        ] );
      ( "registry",
        [
          Alcotest.test_case "families + capabilities" `Quick
            test_registry_metadata;
          Alcotest.test_case "require" `Quick test_registry_require;
          Alcotest.test_case "configure capability error" `Quick
            test_configure_capability_error;
        ] );
      ( "figures",
        [ Alcotest.test_case "all figures smoke" `Slow test_every_figure_smokes ] );
    ]
